(* Bechamel micro-benchmarks: one Test.make per compilation pass and per
   experiment kernel, so pass-level regressions are visible independently of
   the end-to-end experiment tables. *)

open Bechamel
open Toolkit
open Common
module Opinfo = Cim_compiler.Opinfo
module Lp = Cim_solver.Lp

let chip = Config.dynaplasia

let bert_layer =
  lazy
    ((Option.get (Option.get (Zoo.find "bert-large")).Zoo.layer)
       (Workload.prefill ~batch:1 64))

let resnet = lazy ((Option.get (Zoo.find "resnet18")).Zoo.build (Workload.prefill ~batch:1 1))

let bert_ops = lazy (Opinfo.extract chip (Lazy.force bert_layer))

let sample_lp =
  {
    Lp.n_vars = 6;
    maximize = [| 3.; 2.; 4.; 1.; 5.; 2. |];
    rows =
      [
        ([| 1.; 1.; 1.; 1.; 1.; 1. |], Lp.Le, 10.);
        ([| 2.; 1.; 0.; 3.; 0.; 1. |], Lp.Le, 12.);
        ([| 0.; 1.; 2.; 0.; 1.; 0. |], Lp.Ge, 2.);
        ([| 1.; 0.; 0.; 1.; 0.; 1. |], Lp.Eq, 4.);
      ];
    lower = Array.make 6 0.;
    upper = Array.make 6 infinity;
  }

(* ---- solver micro-benchmark ---------------------------------------------- *)

(* Per-MILP solver cost on real segment models (resnet18 CNN windows,
   bert-large transformer windows), both LP backends in the same run:
   wall-clock from repeated timed solves, pivot/refactorization counts from
   the solver's own metrics. Emitted as a Table so `--json` captures it
   (BENCH_solver.json in CI). *)

let resnet_ops = lazy (Opinfo.extract chip (Lazy.force resnet))

module Metrics = Cim_obs.Metrics
module Milp = Cim_solver.Milp

let solver_windows =
  [ ("resnet18", resnet_ops, 0, 4); ("resnet18", resnet_ops, 5, 9);
    ("bert-large", bert_ops, 0, 3); ("bert-large", bert_ops, 4, 9);
    ("bert-large", bert_ops, 0, 9) ]

let run_solver () =
  section "solver | per-MILP pivots, refactorizations, wall-clock";
  let reps = 20 in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "solver micro-benchmark: per-MILP cost on segment models (mean of %d solves)"
           reps)
      [ ("segment", Table.Left); ("backend", Table.Left);
        ("wall (ms)", Table.Right); ("pivots", Table.Right);
        ("refactorizations", Table.Right); ("bb nodes", Table.Right) ]
  in
  List.iter
    (fun (model, ops, lo, hi) ->
      let ops = Lazy.force ops in
      let hi = min hi (Array.length ops - 1) in
      let p, kinds = Alloc.segment_problem chip ops ~lo ~hi in
      List.iter
        (fun (bname, backend, pivot_counter) ->
          Metrics.set_enabled true;
          Metrics.reset ();
          let t0 = Unix.gettimeofday () in
          for _ = 1 to reps do
            ignore (Milp.solve ~gap:5e-3 ~backend p ~kinds)
          done;
          let wall = (Unix.gettimeofday () -. t0) /. float_of_int reps in
          let per c =
            Metrics.counter_value (Metrics.counter c) /. float_of_int reps
          in
          let pivots = per pivot_counter in
          let refactors = per "solver.simplex.refactorizations" in
          let nodes = per "solver.bb.nodes" in
          Metrics.set_enabled false;
          Metrics.reset ();
          Table.add_row tbl
            [ Printf.sprintf "%s %d..%d" model lo hi; bname;
              Table.cell_f ~digits:4 (wall *. 1e3);
              Table.cell_f ~digits:1 pivots;
              Table.cell_f ~digits:1 refactors;
              Table.cell_f ~digits:1 nodes ])
        [ ("revised", Milp.Revised, "solver.simplex.pivots");
          ("dense", Milp.Dense, "solver.lp_dense.pivots") ])
    solver_windows;
  Table.print tbl

let tests =
  Test.make_grouped ~name:"cmswitch"
    [
      Test.make ~name:"graph-build/bert-layer"
        (Staged.stage (fun () ->
             (Option.get (Option.get (Zoo.find "bert-large")).Zoo.layer)
               (Workload.prefill ~batch:1 64)));
      Test.make ~name:"opinfo-extract/bert-layer"
        (Staged.stage (fun () -> Opinfo.extract chip (Lazy.force bert_layer)));
      Test.make ~name:"mip-alloc/segment-of-4"
        (Staged.stage (fun () ->
             let ops = Lazy.force bert_ops in
             Cim_compiler.Alloc.solve chip ops ~lo:0
               ~hi:(min 3 (Array.length ops - 1))));
      Test.make ~name:"dp-segment/bert-layer"
        (Staged.stage (fun () ->
             Cim_compiler.Segment.run chip (Lazy.force bert_ops)));
      Test.make ~name:"compile/bert-layer"
        (Staged.stage (fun () -> Cmswitch.compile chip (Lazy.force bert_layer)));
      Test.make ~name:"compile/resnet18"
        (Staged.stage (fun () -> Cmswitch.compile chip (Lazy.force resnet)));
      Test.make ~name:"lp-simplex/6var"
        (Staged.stage (fun () -> Lp.solve sample_lp));
      Test.make ~name:"lp-simplex-dense/6var"
        (Staged.stage (fun () -> Cim_solver.Lp_dense.solve sample_lp));
      Test.make ~name:"shape-infer/resnet18"
        (Staged.stage (fun () -> Cim_nnir.Shape_infer.infer (Lazy.force resnet)));
    ]

let run () =
  section "micro | bechamel pass-level benchmarks";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let tbl =
    Table.create ~title:"per-run wall time (OLS estimate)"
      [ ("benchmark", Table.Left); ("time/run", Table.Right) ]
  in
  List.iter
    (fun (name, o) ->
      let est =
        match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> nan
      in
      let pretty =
        if Float.is_nan est then "n/a"
        else if est >= 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est >= 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else if est >= 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
        else Printf.sprintf "%.0f ns" est
      in
      Table.add_row tbl [ name; pretty ])
    (List.sort compare rows);
  Table.print tbl
