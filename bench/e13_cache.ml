(* E13 — compilation cache: cold vs warm whole-program compile. A cold
   compile populates a content-addressed cache directory; a warm compile
   (fresh store handle on the same directory, as a new process would open)
   must hit the whole-program tier, replay a byte-identical program, and
   be substantially faster — the MILP window solves, which dominate cold
   compile time, are skipped entirely on replay. *)

open Common
module Store = Cim_cache.Store
module Ccache = Cim_compiler.Ccache
module Flow = Cim_metaop.Flow

let graph_of key =
  let e = Option.get (Zoo.find key) in
  match e.Zoo.family with
  | Zoo.Cnn -> e.Zoo.build (Workload.prefill ~batch:1 1)
  | Zoo.Encoder_only -> (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 64)
  | Zoo.Decoder_only -> (Option.get e.Zoo.layer) (Workload.decode ~batch:1 64)

let md5 r = Digest.to_hex (Digest.string (Flow.to_string r.Cmswitch.program))

let run () =
  section "E13 | compilation cache: cold vs warm compile";
  let chip = Config.dynaplasia in
  let tbl =
    Table.create ~title:"whole-program cache replay (jobs=1)"
      [ ("model", Table.Left); ("cold (s)", Table.Right);
        ("warm (s)", Table.Right); ("speedup", Table.Right);
        ("prog hits", Table.Right); ("identical", Table.Left) ]
  in
  List.iter
    (fun key ->
      let g = graph_of key in
      let dir = Filename.temp_dir "cmswitch-bench-cache" "" in
      let compile store =
        let cfg = Cmswitch.Config.(default |> with_jobs 1 |> with_cache (Some store)) in
        let t0 = Unix.gettimeofday () in
        let r = Cmswitch.compile ~config:cfg chip g in
        (r, Unix.gettimeofday () -. t0)
      in
      let cold, t_cold = compile (Store.open_dir dir) in
      let warm_store = Store.open_dir dir in
      let warm, t_warm = compile warm_store in
      let hits = (Store.tier_counters warm_store Ccache.prog_tier).Store.hits in
      let identical = md5 cold = md5 warm in
      Table.add_row tbl
        [ key; Table.cell_f ~digits:3 t_cold; Table.cell_f ~digits:3 t_warm;
          Table.cell_speedup (t_cold /. Float.max 1e-6 t_warm);
          string_of_int hits; (if identical then "yes" else "NO") ];
      ignore (Store.clear warm_store))
    [ "bert-large"; "llama2-7b" ];
  Table.print tbl;
  print_endline
    "warm replay re-derives placement + codegen and re-validates the flow;\n\
     only the DP's MILP window solves are skipped - they dominate cold time"
