(* Tests for the observability layer: JSON round-trips, Chrome trace-event
   structure (span nesting recovered by interval containment), metrics
   accumulation, the zero-cost-when-disabled guarantee, and a golden trace
   of a real compile + simulate run. *)

module J = Cim_obs.Json
module Trace = Cim_obs.Trace
module Metrics = Cim_obs.Metrics
module Config = Cim_arch.Config
module Cmswitch = Cim_compiler.Cmswitch
module Functional = Cim_sim.Functional
module Timing = Cim_sim.Timing
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Rng = Cim_util.Rng

let chip = Config.dynaplasia

(* trace and metrics state is global to the process; every test that
   enables it must restore the disabled default or it would leak into the
   other suites *)
let with_obs f =
  Trace.set_enabled true;
  Trace.reset ();
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ();
      Metrics.set_enabled false;
      Metrics.reset ())
    f

(* --- Json --- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [ ("s", J.String "a \"quoted\"\nline\twith \\ specials");
        ("i", J.Int (-42));
        ("f", J.Float 2.5);
        ("tiny", J.Float 1.25e-8);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Obj [ ("k", J.Bool false) ]; J.List [] ]) ]
  in
  let reparsed = J.of_string (J.to_string doc) in
  Alcotest.(check bool) "compact round-trip" true (reparsed = doc);
  let reparsed = J.of_string (J.to_string ~pretty:true doc) in
  Alcotest.(check bool) "pretty round-trip" true (reparsed = doc);
  (* non-finite floats have no JSON encoding and must degrade to null *)
  Alcotest.(check string) "NaN is null" "null" (J.to_string (J.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (J.to_string (J.Float Float.infinity));
  Alcotest.(check bool) "member hit" true
    (J.member "i" doc = Some (J.Int (-42)));
  Alcotest.(check bool) "member miss" true (J.member "zz" doc = None);
  Alcotest.(check bool) "to_float of int" true (J.to_float (J.Int 3) = Some 3.)

let test_json_malformed () =
  List.iter
    (fun src ->
      match J.of_string src with
      | exception J.Parse_error _ -> ()
      | v -> Alcotest.failf "%S parsed to %s" src (J.to_string v))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ]

(* --- trace structure --- *)

type span = { name : string; ts : float; dur : float; pid : int; tid : int }

let spans_of_trace j =
  let evs =
    match J.member "traceEvents" j with
    | Some (J.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  List.filter_map
    (fun e ->
      let str k = match J.member k e with Some (J.String s) -> Some s | _ -> None in
      let num k = Option.bind (J.member k e) J.to_float in
      let int k = match J.member k e with Some (J.Int i) -> Some i | _ -> None in
      match (str "ph", str "name") with
      | Some "X", Some name ->
        let get what o = match o with Some v -> v | None -> Alcotest.failf "span %s lacks %s" name what in
        Some
          { name;
            ts = get "ts" (num "ts");
            dur = get "dur" (num "dur");
            pid = get "pid" (int "pid");
            tid = get "tid" (int "tid") }
      | _ -> None)
    evs

let contains outer inner =
  outer.ts <= inner.ts +. 1e-9
  && inner.ts +. inner.dur <= outer.ts +. outer.dur +. 1e-9

let test_span_nesting () =
  with_obs @@ fun () ->
  let v =
    Trace.with_span "outer" @@ fun () ->
    Trace.with_span "child1" (fun () -> ignore (Sys.opaque_identity 1));
    Trace.with_span "child2" ~args:[ ("k", J.Int 7) ] (fun () -> ());
    17
  in
  Alcotest.(check int) "with_span returns" 17 v;
  (* parse the emitted text back, as an external consumer would *)
  let j = J.of_string (J.to_string (Trace.export ())) in
  let spans = spans_of_trace j in
  let find n =
    match List.find_opt (fun s -> s.name = n) spans with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" n
  in
  let outer = find "outer" and c1 = find "child1" and c2 = find "child2" in
  Alcotest.(check bool) "child1 nested" true (contains outer c1);
  Alcotest.(check bool) "child2 nested" true (contains outer c2);
  Alcotest.(check bool) "children ordered" true (c1.ts <= c2.ts);
  Alcotest.(check bool) "children disjoint" true (c1.ts +. c1.dur <= c2.ts +. 1e-9);
  (* export sorts by (pid, ts): the parent precedes its children even
     though spans are recorded at exit *)
  let names = List.map (fun s -> s.name) spans in
  Alcotest.(check (list string)) "begin order" [ "outer"; "child1"; "child2" ] names

let test_span_survives_raise () =
  with_obs @@ fun () ->
  (match Trace.with_span "raiser" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "exception swallowed");
  let spans = spans_of_trace (Trace.export ()) in
  Alcotest.(check bool) "span recorded despite raise" true
    (List.exists (fun s -> s.name = "raiser") spans)

(* --- domain safety: the clock, buffered recording, atomic metrics --- *)

let test_monotone_clock_across_domains () =
  (* stamps must be strictly increasing within each domain and globally
     distinct, so per-domain buffers merge onto one monotone timeline *)
  let per_domain = 2_000 in
  let sample () = Array.init per_domain (fun _ -> Trace.now_us ()) in
  let d1 = Domain.spawn sample and d2 = Domain.spawn sample in
  let here = sample () in
  let a = Domain.join d1 and b = Domain.join d2 in
  let strictly_increasing ts =
    Array.for_all Fun.id (Array.init (per_domain - 1) (fun i -> ts.(i) < ts.(i + 1)))
  in
  List.iter
    (fun (who, ts) ->
      Alcotest.(check bool) (who ^ " strictly increasing") true
        (strictly_increasing ts))
    [ ("domain1", a); ("domain2", b); ("caller", here) ];
  let all = Array.concat [ a; b; here ] in
  let module FS = Set.Make (Float) in
  Alcotest.(check int) "no stamp issued twice"
    (Array.length all)
    (FS.cardinal (FS.of_list (Array.to_list all)))

let test_buffered_merge () =
  with_obs @@ fun () ->
  (* two domains record into local buffers on distinct lanes; the
     coordinator merges in an order of its choosing and the merged export
     is exactly the usual span structure *)
  let worker tid name =
    Domain.spawn (fun () ->
        Trace.set_domain_tid tid;
        Trace.with_buffer (fun () ->
            Trace.with_span name (fun () -> ignore (Sys.opaque_identity 1))))
  in
  let d1 = worker 7 "buffered1" and d2 = worker 8 "buffered2" in
  let (), ev1 = Domain.join d1 in
  let (), ev2 = Domain.join d2 in
  Trace.with_span "direct" (fun () -> ());
  Trace.merge ev1;
  Trace.merge ev2;
  let spans = spans_of_trace (J.of_string (J.to_string (Trace.export ()))) in
  let find n =
    match List.find_opt (fun s -> s.name = n) spans with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing after merge" n
  in
  Alcotest.(check int) "worker lane preserved" 7 (find "buffered1").tid;
  Alcotest.(check int) "second lane preserved" 8 (find "buffered2").tid;
  Alcotest.(check int) "unbuffered span on the default lane" 1 (find "direct").tid;
  (* a raising buffered section drops its events with the exception *)
  (match Trace.with_buffer (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed by with_buffer")

let test_atomic_metrics_across_domains () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.par.counter" in
  let h = Metrics.histogram "test.par.hist" in
  let n = 10_000 in
  let hammer () =
    for i = 1 to n do
      Metrics.incr c;
      Metrics.observe h (float_of_int i)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn hammer) in
  hammer ();
  List.iter Domain.join ds;
  Alcotest.(check (float 1e-9)) "no lost counter increments"
    (float_of_int (4 * n))
    (Metrics.counter_value c);
  Alcotest.(check int) "no lost histogram samples" (4 * n)
    (Metrics.histogram_count h)

(* --- metrics --- *)

let test_metrics_accumulation () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:2.5 c;
  Alcotest.(check (float 1e-9)) "counter sums" 3.5 (Metrics.counter_value c);
  Alcotest.(check bool) "find-or-create aliases" true
    (Metrics.counter_value (Metrics.counter "test.counter") = 3.5);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 4.;
  Metrics.set_gauge g 9.;
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "histogram count" 4 (Metrics.histogram_count h);
  (match J.of_string (J.to_string (Metrics.to_json ())) with
  | J.Obj _ as j ->
    let counters = Option.get (J.member "counters" j) in
    Alcotest.(check bool) "counter in json" true
      (J.member "test.counter" counters = Some (J.Float 3.5));
    let gauges = Option.get (J.member "gauges" j) in
    Alcotest.(check bool) "gauge keeps last" true
      (J.member "test.gauge" gauges = Some (J.Float 9.));
    let hist = Option.get (J.member "test.hist" (Option.get (J.member "histograms" j))) in
    Alcotest.(check bool) "hist p50" true
      (match J.to_float (Option.get (J.member "p50" hist)) with
      | Some v -> v >= 2. && v <= 3.
      | None -> false)
  | _ -> Alcotest.fail "metrics json not an object");
  let md = Metrics.to_markdown () in
  let has needle =
    let n = String.length needle and h = String.length md in
    let rec go i = i + n <= h && (String.sub md i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "markdown lists counter" true (has "test.counter");
  Alcotest.(check bool) "markdown lists hist" true (has "test.hist");
  (* a type clash on one name is a programming error, not a silent alias *)
  (match Metrics.gauge "test.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash must raise");
  Metrics.reset ();
  Alcotest.(check (float 1e-9)) "reset zeroes" 0. (Metrics.counter_value c);
  Alcotest.(check int) "reset empties hist" 0 (Metrics.histogram_count h)

(* --- disabled mode: no effect, and no observable cost --- *)

let test_disabled_noop () =
  Trace.set_enabled false;
  Trace.reset ();
  Metrics.set_enabled false;
  Metrics.reset ();
  let v = Trace.with_span "ghost" (fun () -> 3) in
  Alcotest.(check int) "with_span passthrough" 3 v;
  Trace.instant "ghost-mark";
  Trace.complete ~pid:1 ~tid:1 ~ts:0. ~dur:1. "ghost-complete";
  Alcotest.(check bool) "no events recorded" true
    (spans_of_trace (Trace.export ()) = []);
  let c = Metrics.counter "test.disabled" in
  Metrics.incr c;
  let h = Metrics.histogram "test.disabled.h" in
  Metrics.observe h 1.;
  Alcotest.(check (float 1e-9)) "counter untouched" 0. (Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.histogram_count h)

let test_disabled_overhead () =
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let c = Metrics.counter "test.overhead" in
  let g = Metrics.gauge "test.overhead.g" in
  let h = Metrics.histogram "test.overhead.h" in
  let n = 1_000_000 in
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for i = 1 to n do
    Trace.with_span "hot" (fun () -> acc := !acc + i);
    Metrics.incr c;
    Metrics.set_gauge g (float_of_int i);
    Metrics.observe h (float_of_int i)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "work ran" (n * (n + 1) / 2) !acc;
  (* a disabled span or metric update is one flag check (now an Atomic.get)
     + calling f; 1e6 iterations of all four finish in a few ms, so a full
     second means the fast path regressed badly *)
  Alcotest.(check bool)
    (Printf.sprintf "1e6 disabled spans took %.3fs (< 1s)" dt)
    true (dt < 1.)

(* --- golden trace of a real compile + simulate --- *)

let small_model rng = Cim_models.Mlp.build ~rng ~batch:2 ~dims:[ 64; 128; 32 ] ()

let test_compile_trace () =
  with_obs @@ fun () ->
  let rng = Rng.create 31 in
  let g = small_model rng in
  let r = Cmswitch.compile chip g in
  ignore (Timing.run chip r.Cmswitch.program);
  let x = Tensor.rand rng (Shape.of_list [ 2; 64 ]) ~lo:(-1.) ~hi:1. in
  ignore (Functional.run chip g r.Cmswitch.program ~inputs:[ ("x", x) ]);
  let j = J.of_string (J.to_string (Trace.export ())) in
  let spans = spans_of_trace j in
  let named n = List.filter (fun s -> s.name = n) spans in
  let compile =
    match named "compile" with
    | [ s ] -> s
    | l -> Alcotest.failf "expected one compile span, got %d" (List.length l)
  in
  (* every pass span sits inside the root compile span *)
  List.iter
    (fun pass ->
      match named pass with
      | [] -> Alcotest.failf "missing %s span" pass
      | l ->
        List.iter
          (fun s ->
            Alcotest.(check bool) (pass ^ " inside compile") true
              (contains compile s))
          l)
    [ "partition"; "dp.segmentation"; "placement"; "codegen"; "flow.validate" ];
  Alcotest.(check bool) "per-segment solver spans" true (named "milp.segment" <> []);
  (* the timing simulator contributes per-array residency tracks and
     per-segment slabs on its own process *)
  let residency pid =
    List.filter (fun s -> s.pid = pid)
      (List.filter
         (fun s ->
           s.name = "memory" || s.name = "compute"
           || String.length s.name >= 6 && String.sub s.name 0 6 = "switch")
         spans)
  in
  Alcotest.(check bool) "timing residency track events" true
    (residency Trace.pid_simulator <> []);
  Alcotest.(check bool) "machine residency track events" true
    (residency Trace.pid_machine <> []);
  (* metrics populated by the same run *)
  let cv n = Metrics.counter_value (Metrics.counter n) in
  Alcotest.(check bool) "bb nodes counted" true (cv "solver.bb.nodes" > 0.);
  Alcotest.(check bool) "simplex pivots counted" true (cv "solver.simplex.pivots" > 0.);
  Alcotest.(check bool) "segments counted" true (cv "compile.segments" > 0.);
  Alcotest.(check bool) "sim cycles counted" true (cv "sim.cycles.total" > 0.);
  Alcotest.(check bool) "mode switches counted" true
    (cv "sim.switches.m2c" +. cv "sim.switches.c2m" > 0.)

let test_write_file () =
  with_obs @@ fun () ->
  Trace.with_span "io" (fun () -> ());
  let file = Filename.temp_file "cmswitch_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.write_file file;
      let ic = open_in file in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let spans = spans_of_trace (J.of_string src) in
      Alcotest.(check bool) "file parses with span" true
        (List.exists (fun s -> s.name = "io") spans))

let suite =
  ( "obs",
    [
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json malformed" `Quick test_json_malformed;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
      Alcotest.test_case "monotone clock across domains" `Quick
        test_monotone_clock_across_domains;
      Alcotest.test_case "buffered spans merge" `Quick test_buffered_merge;
      Alcotest.test_case "atomic metrics across domains" `Quick
        test_atomic_metrics_across_domains;
      Alcotest.test_case "metrics accumulation" `Quick test_metrics_accumulation;
      Alcotest.test_case "disabled is no-op" `Quick test_disabled_noop;
      Alcotest.test_case "disabled overhead guard" `Quick test_disabled_overhead;
      Alcotest.test_case "golden compile trace" `Quick test_compile_trace;
      Alcotest.test_case "trace file round-trip" `Quick test_write_file;
    ] )
