(* Tests for the observability layer: JSON round-trips, Chrome trace-event
   structure (span nesting recovered by interval containment), metrics
   accumulation, the zero-cost-when-disabled guarantee, and a golden trace
   of a real compile + simulate run. *)

module J = Cim_obs.Json
module Trace = Cim_obs.Trace
module Metrics = Cim_obs.Metrics
module Config = Cim_arch.Config
module Cmswitch = Cim_compiler.Cmswitch
module Functional = Cim_sim.Functional
module Timing = Cim_sim.Timing
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Rng = Cim_util.Rng

let chip = Config.dynaplasia

(* trace and metrics state is global to the process; every test that
   enables it must restore the disabled default or it would leak into the
   other suites *)
let with_obs f =
  Trace.set_enabled true;
  Trace.reset ();
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.reset ();
      Metrics.set_enabled false;
      Metrics.reset ())
    f

(* --- Json --- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [ ("s", J.String "a \"quoted\"\nline\twith \\ specials");
        ("i", J.Int (-42));
        ("f", J.Float 2.5);
        ("tiny", J.Float 1.25e-8);
        ("b", J.Bool true);
        ("n", J.Null);
        ("l", J.List [ J.Int 1; J.Obj [ ("k", J.Bool false) ]; J.List [] ]) ]
  in
  let reparsed = J.of_string (J.to_string doc) in
  Alcotest.(check bool) "compact round-trip" true (reparsed = doc);
  let reparsed = J.of_string (J.to_string ~pretty:true doc) in
  Alcotest.(check bool) "pretty round-trip" true (reparsed = doc);
  (* non-finite floats have no JSON encoding and must degrade to null *)
  Alcotest.(check string) "NaN is null" "null" (J.to_string (J.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (J.to_string (J.Float Float.infinity));
  Alcotest.(check bool) "member hit" true
    (J.member "i" doc = Some (J.Int (-42)));
  Alcotest.(check bool) "member miss" true (J.member "zz" doc = None);
  Alcotest.(check bool) "to_float of int" true (J.to_float (J.Int 3) = Some 3.)

let test_json_malformed () =
  List.iter
    (fun src ->
      match J.of_string src with
      | exception J.Parse_error _ -> ()
      | v -> Alcotest.failf "%S parsed to %s" src (J.to_string v))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "" ]

(* --- trace structure --- *)

type span = { name : string; ts : float; dur : float; pid : int; tid : int }

let spans_of_trace j =
  let evs =
    match J.member "traceEvents" j with
    | Some (J.List evs) -> evs
    | _ -> Alcotest.fail "no traceEvents list"
  in
  List.filter_map
    (fun e ->
      let str k = match J.member k e with Some (J.String s) -> Some s | _ -> None in
      let num k = Option.bind (J.member k e) J.to_float in
      let int k = match J.member k e with Some (J.Int i) -> Some i | _ -> None in
      match (str "ph", str "name") with
      | Some "X", Some name ->
        let get what o = match o with Some v -> v | None -> Alcotest.failf "span %s lacks %s" name what in
        Some
          { name;
            ts = get "ts" (num "ts");
            dur = get "dur" (num "dur");
            pid = get "pid" (int "pid");
            tid = get "tid" (int "tid") }
      | _ -> None)
    evs

let contains outer inner =
  outer.ts <= inner.ts +. 1e-9
  && inner.ts +. inner.dur <= outer.ts +. outer.dur +. 1e-9

let test_span_nesting () =
  with_obs @@ fun () ->
  let v =
    Trace.with_span "outer" @@ fun () ->
    Trace.with_span "child1" (fun () -> ignore (Sys.opaque_identity 1));
    Trace.with_span "child2" ~args:[ ("k", J.Int 7) ] (fun () -> ());
    17
  in
  Alcotest.(check int) "with_span returns" 17 v;
  (* parse the emitted text back, as an external consumer would *)
  let j = J.of_string (J.to_string (Trace.export ())) in
  let spans = spans_of_trace j in
  let find n =
    match List.find_opt (fun s -> s.name = n) spans with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" n
  in
  let outer = find "outer" and c1 = find "child1" and c2 = find "child2" in
  Alcotest.(check bool) "child1 nested" true (contains outer c1);
  Alcotest.(check bool) "child2 nested" true (contains outer c2);
  Alcotest.(check bool) "children ordered" true (c1.ts <= c2.ts);
  Alcotest.(check bool) "children disjoint" true (c1.ts +. c1.dur <= c2.ts +. 1e-9);
  (* export sorts by (pid, ts): the parent precedes its children even
     though spans are recorded at exit *)
  let names = List.map (fun s -> s.name) spans in
  Alcotest.(check (list string)) "begin order" [ "outer"; "child1"; "child2" ] names

let test_span_survives_raise () =
  with_obs @@ fun () ->
  (match Trace.with_span "raiser" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "exception swallowed");
  let spans = spans_of_trace (Trace.export ()) in
  Alcotest.(check bool) "span recorded despite raise" true
    (List.exists (fun s -> s.name = "raiser") spans)

(* --- domain safety: the clock, buffered recording, atomic metrics --- *)

let test_monotone_clock_across_domains () =
  (* stamps must be strictly increasing within each domain and globally
     distinct, so per-domain buffers merge onto one monotone timeline *)
  let per_domain = 2_000 in
  let sample () = Array.init per_domain (fun _ -> Trace.now_us ()) in
  let d1 = Domain.spawn sample and d2 = Domain.spawn sample in
  let here = sample () in
  let a = Domain.join d1 and b = Domain.join d2 in
  let strictly_increasing ts =
    Array.for_all Fun.id (Array.init (per_domain - 1) (fun i -> ts.(i) < ts.(i + 1)))
  in
  List.iter
    (fun (who, ts) ->
      Alcotest.(check bool) (who ^ " strictly increasing") true
        (strictly_increasing ts))
    [ ("domain1", a); ("domain2", b); ("caller", here) ];
  let all = Array.concat [ a; b; here ] in
  let module FS = Set.Make (Float) in
  Alcotest.(check int) "no stamp issued twice"
    (Array.length all)
    (FS.cardinal (FS.of_list (Array.to_list all)))

let test_buffered_merge () =
  with_obs @@ fun () ->
  (* two domains record into local buffers on distinct lanes; the
     coordinator merges in an order of its choosing and the merged export
     is exactly the usual span structure *)
  let worker tid name =
    Domain.spawn (fun () ->
        Trace.set_domain_tid tid;
        Trace.with_buffer (fun () ->
            Trace.with_span name (fun () -> ignore (Sys.opaque_identity 1))))
  in
  let d1 = worker 7 "buffered1" and d2 = worker 8 "buffered2" in
  let (), ev1 = Domain.join d1 in
  let (), ev2 = Domain.join d2 in
  Trace.with_span "direct" (fun () -> ());
  Trace.merge ev1;
  Trace.merge ev2;
  let spans = spans_of_trace (J.of_string (J.to_string (Trace.export ()))) in
  let find n =
    match List.find_opt (fun s -> s.name = n) spans with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing after merge" n
  in
  Alcotest.(check int) "worker lane preserved" 7 (find "buffered1").tid;
  Alcotest.(check int) "second lane preserved" 8 (find "buffered2").tid;
  Alcotest.(check int) "unbuffered span on the default lane" 1 (find "direct").tid;
  (* a raising buffered section drops its events with the exception *)
  (match Trace.with_buffer (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed by with_buffer")

let test_atomic_metrics_across_domains () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.par.counter" in
  let h = Metrics.histogram "test.par.hist" in
  let n = 10_000 in
  let hammer () =
    for i = 1 to n do
      Metrics.incr c;
      Metrics.observe h (float_of_int i)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn hammer) in
  hammer ();
  List.iter Domain.join ds;
  Alcotest.(check (float 1e-9)) "no lost counter increments"
    (float_of_int (4 * n))
    (Metrics.counter_value c);
  Alcotest.(check int) "no lost histogram samples" (4 * n)
    (Metrics.histogram_count h)

(* --- metrics --- *)

let test_metrics_accumulation () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.incr ~by:2.5 c;
  Alcotest.(check (float 1e-9)) "counter sums" 3.5 (Metrics.counter_value c);
  Alcotest.(check bool) "find-or-create aliases" true
    (Metrics.counter_value (Metrics.counter "test.counter") = 3.5);
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 4.;
  Metrics.set_gauge g 9.;
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "histogram count" 4 (Metrics.histogram_count h);
  (match J.of_string (J.to_string (Metrics.to_json ())) with
  | J.Obj _ as j ->
    let counters = Option.get (J.member "counters" j) in
    Alcotest.(check bool) "counter in json" true
      (J.member "test.counter" counters = Some (J.Float 3.5));
    let gauges = Option.get (J.member "gauges" j) in
    Alcotest.(check bool) "gauge keeps last" true
      (J.member "test.gauge" gauges = Some (J.Float 9.));
    let hist = Option.get (J.member "test.hist" (Option.get (J.member "histograms" j))) in
    Alcotest.(check bool) "hist p50" true
      (match J.to_float (Option.get (J.member "p50" hist)) with
      | Some v -> v >= 2. && v <= 3.
      | None -> false)
  | _ -> Alcotest.fail "metrics json not an object");
  let md = Metrics.to_markdown () in
  let has needle =
    let n = String.length needle and h = String.length md in
    let rec go i = i + n <= h && (String.sub md i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "markdown lists counter" true (has "test.counter");
  Alcotest.(check bool) "markdown lists hist" true (has "test.hist");
  (* a type clash on one name is a programming error, not a silent alias *)
  (match Metrics.gauge "test.counter" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type clash must raise");
  Metrics.reset ();
  Alcotest.(check (float 1e-9)) "reset zeroes" 0. (Metrics.counter_value c);
  Alcotest.(check int) "reset empties hist" 0 (Metrics.histogram_count h)

(* --- disabled mode: no effect, and no observable cost --- *)

let test_disabled_noop () =
  Trace.set_enabled false;
  Trace.reset ();
  Metrics.set_enabled false;
  Metrics.reset ();
  let v = Trace.with_span "ghost" (fun () -> 3) in
  Alcotest.(check int) "with_span passthrough" 3 v;
  Trace.instant "ghost-mark";
  Trace.complete ~pid:1 ~tid:1 ~ts:0. ~dur:1. "ghost-complete";
  Alcotest.(check bool) "no events recorded" true
    (spans_of_trace (Trace.export ()) = []);
  let c = Metrics.counter "test.disabled" in
  Metrics.incr c;
  let h = Metrics.histogram "test.disabled.h" in
  Metrics.observe h 1.;
  Alcotest.(check (float 1e-9)) "counter untouched" 0. (Metrics.counter_value c);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.histogram_count h)

let test_disabled_overhead () =
  Trace.set_enabled false;
  Metrics.set_enabled false;
  let c = Metrics.counter "test.overhead" in
  let g = Metrics.gauge "test.overhead.g" in
  let h = Metrics.histogram "test.overhead.h" in
  let n = 1_000_000 in
  let t0 = Unix.gettimeofday () in
  let acc = ref 0 in
  for i = 1 to n do
    Trace.with_span "hot" (fun () -> acc := !acc + i);
    Metrics.incr c;
    Metrics.set_gauge g (float_of_int i);
    Metrics.observe h (float_of_int i)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "work ran" (n * (n + 1) / 2) !acc;
  (* a disabled span or metric update is one flag check (now an Atomic.get)
     + calling f; 1e6 iterations of all four finish in a few ms, so a full
     second means the fast path regressed badly *)
  Alcotest.(check bool)
    (Printf.sprintf "1e6 disabled spans took %.3fs (< 1s)" dt)
    true (dt < 1.)

(* --- golden trace of a real compile + simulate --- *)

let small_model rng = Cim_models.Mlp.build ~rng ~batch:2 ~dims:[ 64; 128; 32 ] ()

let test_compile_trace () =
  with_obs @@ fun () ->
  let rng = Rng.create 31 in
  let g = small_model rng in
  let r = Cmswitch.compile chip g in
  ignore (Timing.run chip r.Cmswitch.program);
  let x = Tensor.rand rng (Shape.of_list [ 2; 64 ]) ~lo:(-1.) ~hi:1. in
  ignore (Functional.run chip g r.Cmswitch.program ~inputs:[ ("x", x) ]);
  let j = J.of_string (J.to_string (Trace.export ())) in
  let spans = spans_of_trace j in
  let named n = List.filter (fun s -> s.name = n) spans in
  let compile =
    match named "compile" with
    | [ s ] -> s
    | l -> Alcotest.failf "expected one compile span, got %d" (List.length l)
  in
  (* every pass span sits inside the root compile span *)
  List.iter
    (fun pass ->
      match named pass with
      | [] -> Alcotest.failf "missing %s span" pass
      | l ->
        List.iter
          (fun s ->
            Alcotest.(check bool) (pass ^ " inside compile") true
              (contains compile s))
          l)
    [ "partition"; "dp.segmentation"; "placement"; "codegen"; "flow.validate" ];
  Alcotest.(check bool) "per-segment solver spans" true (named "milp.segment" <> []);
  (* the timing simulator contributes per-array residency tracks and
     per-segment slabs on its own process *)
  let residency pid =
    List.filter (fun s -> s.pid = pid)
      (List.filter
         (fun s ->
           s.name = "memory" || s.name = "compute"
           || String.length s.name >= 6 && String.sub s.name 0 6 = "switch")
         spans)
  in
  Alcotest.(check bool) "timing residency track events" true
    (residency Trace.pid_simulator <> []);
  Alcotest.(check bool) "machine residency track events" true
    (residency Trace.pid_machine <> []);
  (* metrics populated by the same run *)
  let cv n = Metrics.counter_value (Metrics.counter n) in
  Alcotest.(check bool) "bb nodes counted" true (cv "solver.bb.nodes" > 0.);
  Alcotest.(check bool) "simplex pivots counted" true (cv "solver.simplex.pivots" > 0.);
  Alcotest.(check bool) "segments counted" true (cv "compile.segments" > 0.);
  Alcotest.(check bool) "sim cycles counted" true (cv "sim.cycles.total" > 0.);
  Alcotest.(check bool) "mode switches counted" true
    (cv "sim.switches.m2c" +. cv "sim.switches.c2m" > 0.)

let test_write_file () =
  with_obs @@ fun () ->
  Trace.with_span "io" (fun () -> ());
  let file = Filename.temp_file "cmswitch_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Trace.write_file file;
      let ic = open_in file in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let spans = spans_of_trace (J.of_string src) in
      Alcotest.(check bool) "file parses with span" true
        (List.exists (fun s -> s.name = "io") spans))

(* --- bounded histograms: memory capped, exact counts, sane percentiles --- *)

let test_histogram_bounded () =
  with_obs @@ fun () ->
  let h = Metrics.histogram "test.bounded" in
  let n = 1_000_000 in
  for i = 1 to n do
    Metrics.observe h (float_of_int i)
  done;
  let s = Metrics.summarize h in
  (* count, sum, extrema and the bucket vector are exact at any volume;
     only the percentile summary is reservoir-estimated *)
  Alcotest.(check int) "count exact" n s.Metrics.n;
  Alcotest.(check (float 0.)) "sum exact" 500_000_500_000. s.Metrics.sum;
  Alcotest.(check (float 0.)) "min exact" 1. s.Metrics.min;
  Alcotest.(check (float 0.)) "max exact" 1e6 s.Metrics.max;
  (match List.rev s.Metrics.buckets with
  | (le, c) :: _ ->
    Alcotest.(check bool) "last bucket is +Inf" true (le = Float.infinity);
    Alcotest.(check int) "overflow bucket holds every sample" n c
  | [] -> Alcotest.fail "no buckets");
  ignore
    (List.fold_left
       (fun prev (_, c) ->
         Alcotest.(check bool) "bucket series cumulative" true (c >= prev);
         c)
       0 s.Metrics.buckets);
  (match List.assoc_opt 5e5 s.Metrics.buckets with
  | Some c -> Alcotest.(check int) "le=5e5 bucket exact" 500_000 c
  | None -> Alcotest.fail "default ladder lacks the 5e5 bound");
  (* uniform 1..1e6 through a 2048-sample reservoir: estimates, so loose
     bounds — but always ordered *)
  Alcotest.(check bool) "p50 near the median" true
    (s.Metrics.p50 > 4e5 && s.Metrics.p50 < 6e5);
  Alcotest.(check bool) "p95 in the upper tail" true
    (s.Metrics.p95 > 8.5e5 && s.Metrics.p95 <= 1e6);
  Alcotest.(check bool) "percentiles ordered" true
    (s.Metrics.p50 <= s.Metrics.p95
    && s.Metrics.p95 <= s.Metrics.p99
    && s.Metrics.p99 <= s.Metrics.p999
    && s.Metrics.p999 <= s.Metrics.max);
  (* the reservoir stream is deterministic: reset + identical observations
     reproduce the summary bit for bit *)
  Metrics.reset ();
  for i = 1 to n do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check bool) "deterministic reservoir stream" true
    (Metrics.summarize h = s);
  (* the tail quantiles reach the exporters *)
  let j = Metrics.to_json () in
  let hist =
    Option.get (J.member "test.bounded" (Option.get (J.member "histograms" j)))
  in
  Alcotest.(check bool) "p99 in json" true (J.member "p99" hist <> None);
  Alcotest.(check bool) "p999 in json" true (J.member "p999" hist <> None)

(* --- trace ring buffer --- *)

let test_trace_ring () =
  with_obs @@ fun () ->
  Fun.protect ~finally:(fun () -> Trace.set_capacity None) @@ fun () ->
  (match Trace.set_capacity (Some 0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "capacity 0 must raise");
  Trace.set_capacity (Some 4);
  Alcotest.(check bool) "capacity readable" true (Trace.get_capacity () = Some 4);
  Trace.name_process ~pid:Trace.pid_fleet "fleet";
  for i = 0 to 9 do
    Trace.complete ~pid:Trace.pid_fleet ~tid:1 ~ts:(float_of_int i) ~dur:1.
      (Printf.sprintf "ev%d" i)
  done;
  Alcotest.(check int) "six oldest evicted" 6 (Trace.dropped_count ());
  Alcotest.(check (float 1e-9)) "eviction surfaces as trace.dropped" 6.
    (Metrics.counter_value (Metrics.counter "trace.dropped"));
  let j = Trace.export () in
  Alcotest.(check (list string)) "ring keeps the newest window"
    [ "ev6"; "ev7"; "ev8"; "ev9" ]
    (List.map (fun s -> s.name) (spans_of_trace j));
  Alcotest.(check bool) "export reports droppedEvents" true
    (J.member "droppedEvents" j = Some (J.Int 6));
  (* metadata (track names) is never evicted by the ring *)
  (match J.member "traceEvents" j with
  | Some (J.List evs) ->
    Alcotest.(check bool) "track names retained" true
      (List.exists (fun e -> J.member "ph" e = Some (J.String "M")) evs)
  | _ -> Alcotest.fail "no traceEvents");
  (* shrinking below the live count evicts immediately *)
  Trace.set_capacity (Some 2);
  Alcotest.(check int) "shrink evicts" 8 (Trace.dropped_count ());
  (* lifting the cap restores unbounded recording *)
  Trace.set_capacity None;
  Trace.complete ~pid:Trace.pid_fleet ~tid:1 ~ts:20. ~dur:1. "after";
  Alcotest.(check int) "no further drops" 8 (Trace.dropped_count ());
  Trace.reset ();
  Alcotest.(check int) "reset zeroes the dropped count" 0 (Trace.dropped_count ())

(* --- JSON round-trip property --- *)

let json_gen =
  let open QCheck.Gen in
  (* strings built from fragments that exercise every escape path: quotes,
     backslashes, control characters, and multi-byte UTF-8 *)
  let string_gen =
    let fragment =
      oneofl
        [ "\""; "\\"; "\n"; "\r"; "\t"; "\x01"; "\x1f"; "/"; "k"; "plain";
          "caf\xc3\xa9"; "\xe6\xbc\xa2\xe5\xad\x97" ]
    in
    map (String.concat "") (list_size (int_bound 5) fragment)
  in
  (* non-finite floats print as null by design, so they cannot round-trip *)
  let finite_float = map (fun f -> if Float.is_finite f then f else 0.5) float in
  let scalar =
    oneof
      [ return J.Null;
        map (fun b -> J.Bool b) bool;
        map (fun i -> J.Int i) int;
        map (fun f -> J.Float f) finite_float;
        map (fun s -> J.String s) string_gen ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then scalar
         else
           frequency
             [ (3, scalar);
               (1, map (fun l -> J.List l) (list_size (int_bound 4) (self (n / 2))));
               (1,
                map
                  (fun kvs -> J.Obj kvs)
                  (list_size (int_bound 4) (pair string_gen (self (n / 2))))) ])

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json documents survive print/parse" ~count:500
    (QCheck.make ~print:J.to_string json_gen)
    (fun doc ->
      J.of_string (J.to_string doc) = doc
      && J.of_string (J.to_string ~pretty:true doc) = doc)

let test_json_deep_nesting () =
  let rec build n acc =
    if n = 0 then acc else build (n - 1) (J.Obj [ ("k", J.List [ acc ]) ])
  in
  let deep = build 200 (J.String "leaf") in
  Alcotest.(check bool) "deep round-trip" true
    (J.of_string (J.to_string deep) = deep);
  Alcotest.(check bool) "deep pretty round-trip" true
    (J.of_string (J.to_string ~pretty:true deep) = deep);
  (* integral floats keep a decimal point so the type survives the trip *)
  Alcotest.(check string) "integral float prints a point" "42.0"
    (J.to_string (J.Float 42.));
  Alcotest.(check bool) "integral float stays float" true
    (J.of_string (J.to_string (J.Float 42.)) = J.Float 42.)

(* --- OpenMetrics exposition --- *)

let has_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_openmetrics_sanitize () =
  let module O = Cim_obs.Openmetrics in
  Alcotest.(check string) "dots become underscores" "serving_chip_served"
    (O.sanitize_name "serving.chip.served");
  Alcotest.(check string) "leading digit masked" "_9lives"
    (O.sanitize_name "99lives");
  Alcotest.(check string) "colons survive" "a:b_c" (O.sanitize_name "a:b-c")

let test_openmetrics_grammar () =
  with_obs @@ fun () ->
  let c = Metrics.counter ~labels:[ ("chip", "0"); ("model", "a\"b\\c") ]
      "serving.chip.served"
  in
  Metrics.incr ~by:3. c;
  Metrics.set_gauge (Metrics.gauge "fleet.queue.depth") 7.5;
  let h = Metrics.histogram ~buckets:[ 1.; 2.; 5. ] "serving.latency" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.; 100. ];
  let text = Cim_obs.Openmetrics.to_string () in
  let lines = String.split_on_char '\n' text in
  (* the exposition must terminate with "# EOF" *)
  let len = String.length text in
  Alcotest.(check string) "terminates with EOF" "# EOF\n"
    (String.sub text (len - 6) 6);
  (* every line obeys the grammar: a comment, or NAME[{LABELS}] VALUE with
     NAME in [a-zA-Z_:][a-zA-Z0-9_:]* and VALUE a float *)
  let valid_name s =
    String.length s > 0
    && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         s
  in
  List.iter
    (fun line ->
      if line <> "" && not (String.starts_with ~prefix:"# " line) then begin
        let name_end =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some b, Some sp when b < sp -> b
          | _, Some sp -> sp
          | _ -> Alcotest.failf "no sample value in %S" line
        in
        Alcotest.(check bool)
          (Printf.sprintf "metric name in %S is legal" line)
          true
          (valid_name (String.sub line 0 name_end));
        let sp = String.rindex line ' ' in
        let value = String.sub line (sp + 1) (String.length line - sp - 1) in
        match float_of_string_opt value with
        | Some _ -> ()
        | None -> Alcotest.failf "unparseable sample value %S in %S" value line
      end)
    lines;
  (* family-specific structure *)
  List.iter
    (fun expected ->
      Alcotest.(check bool) (expected ^ " present") true (List.mem expected lines))
    [ "# TYPE serving_chip_served counter";
      "# TYPE fleet_queue_depth gauge";
      "# TYPE serving_latency histogram";
      "fleet_queue_depth 7.5";
      "serving_latency_bucket{le=\"1\"} 1";
      "serving_latency_bucket{le=\"2\"} 2";
      "serving_latency_bucket{le=\"5\"} 3";
      "serving_latency_bucket{le=\"+Inf\"} 4";
      "serving_latency_sum 105";
      "serving_latency_count 4" ];
  (* the counter sample carries the _total suffix and its escaped labels *)
  Alcotest.(check bool) "counter _total with labels" true
    (has_sub text
       "serving_chip_served_total{chip=\"0\",model=\"a\\\"b\\\\c\"} 3")

(* --- timeline snapshots --- *)

module Timeline = Cim_obs.Timeline

let test_timeline_sampling () =
  (match Timeline.create ~interval:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero interval accepted");
  (match Timeline.create ~interval:Float.nan () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan interval accepted");
  let tl = Timeline.create ~interval:10. () in
  Alcotest.(check string) "empty timeline renders no csv" "" (Timeline.to_csv tl);
  Alcotest.(check bool) "first tick due at start" true (Timeline.due tl ~now:0.);
  Timeline.record tl ~now:0. [ ("q", 1.) ];
  Alcotest.(check bool) "mid-interval not due" false (Timeline.due tl ~now:9.9);
  Timeline.record tl ~now:5. [ ("q", 2.) ];
  (* second tick at 10 fires on the first event at-or-after it *)
  Timeline.record tl ~now:12. [ ("q", 3.) ];
  Timeline.record tl ~now:13. [ ("q", 4.) ];
  (* a quiet stretch: ticks 20/30/40/50 are skipped, never back-filled *)
  Timeline.record tl ~now:57. [ ("q", 5.) ];
  Alcotest.(check bool) "skipped ticks not back-filled" false
    (Timeline.due tl ~now:59.);
  Timeline.force tl ~now:59. [ ("q", 6.) ];
  Alcotest.(check int) "one sample per due tick" 4 (Timeline.count tl);
  Alcotest.(check bool) "samples stamped with the driving clock" true
    (List.map (fun s -> s.Timeline.t) (Timeline.samples tl)
    = [ 0.; 12.; 57.; 59. ]);
  let csv_lines = String.split_on_char '\n' (Timeline.to_csv tl) in
  Alcotest.(check string) "csv header from field names" "t,q"
    (List.nth csv_lines 0);
  Alcotest.(check string) "csv first row" "0,1" (List.nth csv_lines 1);
  Alcotest.(check string) "csv last row" "59,6" (List.nth csv_lines 4)

let test_timeline_codec () =
  let tl = Timeline.create ~interval:1. () in
  Timeline.record tl ~now:0. [ ("a", 1.5); ("b", 2.) ];
  Timeline.record tl ~now:3.25 [ ("a", 0.25); ("b", -1.) ];
  (match
     Timeline.samples_of_json (J.of_string (J.to_string (Timeline.to_json tl)))
   with
  | Ok ss ->
    Alcotest.(check bool) "samples survive json" true (ss = Timeline.samples tl)
  | Error m -> Alcotest.fail m);
  match Timeline.samples_of_json (J.String "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-list accepted as snapshots"

(* --- telemetry collector and the offline dashboard --- *)

module Telemetry = Cim_obs.Telemetry

let test_telemetry_collector () =
  (match Telemetry.create ~slo_budget:0. () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "budget 0 accepted");
  (match Telemetry.create ~slo_budget:1.5 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "budget 1.5 accepted");
  let tele = Telemetry.create ~snapshot_interval:10. ~slo_budget:0.1 () in
  Alcotest.(check (float 0.)) "interval kept" 10.
    (Telemetry.snapshot_interval tele);
  Alcotest.(check bool) "budget kept" true (Telemetry.slo_budget tele = Some 0.1);
  Telemetry.set_meta tele "model" (J.String "mlp");
  Telemetry.set_meta tele "chips" (J.Int 2);
  Telemetry.set_meta tele "model" (J.String "cnn");
  Telemetry.span tele ~lane:"chip0" ~ts:0. ~dur:5. "prefill";
  Telemetry.span tele ~lane:"chip0" ~ts:5. ~dur:15. "decode"
    ~attrs:[ ("req", J.Int 0) ];
  Telemetry.span tele ~lane:"fleet" ~ts:0. ~dur:2. "queue";
  Telemetry.mark tele ~lane:"chip1" ~ts:3. "fault";
  Alcotest.(check int) "span count" 3 (Telemetry.span_count tele);
  Timeline.record (Telemetry.timeline tele) ~now:0. [ ("queue_depth", 1.) ];
  Timeline.record (Telemetry.timeline tele) ~now:25. [ ("queue_depth", 0.) ];
  Telemetry.set_extra tele "slo"
    (Telemetry.slo_summary ~budget:0.1 ~violations:2 ~completed:50);
  let file = Filename.temp_file "cmswitch_tele" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  Telemetry.write_file tele file;
  let doc = Telemetry.load file in
  (match J.member "meta" doc with
  | Some (J.Obj kvs) ->
    Alcotest.(check int) "meta rekey replaces, not duplicates" 2
      (List.length kvs);
    Alcotest.(check bool) "meta keeps the last value" true
      (List.assoc_opt "model" kvs = Some (J.String "cnn"))
  | _ -> Alcotest.fail "no meta object");
  Alcotest.(check int) "both snapshots serialized" 2
    (match J.member "snapshots" doc with Some (J.List l) -> List.length l | _ -> -1);
  Alcotest.(check int) "spans serialized in order" 3
    (match J.member "spans" doc with Some (J.List l) -> List.length l | _ -> -1);
  (* 2 violations over 50 completions is 4% of a 10% budget: burn rate 0.4 *)
  (match Option.bind (J.member "slo" doc) (J.member "burn_rate") with
  | Some b ->
    Alcotest.(check bool) "burn rate arithmetic" true
      (match J.to_float b with
      | Some v -> Float.abs (v -. 0.4) < 1e-9
      | None -> false)
  | None -> Alcotest.fail "slo extra missing");
  Alcotest.(check bool) "openmetrics text embedded" true
    (match J.member "openmetrics" doc with
    | Some (J.String s) -> has_sub s "# EOF"
    | _ -> false)

let test_telemetry_report () =
  with_obs @@ fun () ->
  Metrics.incr ~by:10. (Metrics.counter "serving.completed");
  List.iter
    (Metrics.observe (Metrics.histogram "serving.latency_cycles"))
    [ 100.; 200.; 300.; 400. ];
  let tele = Telemetry.create ~snapshot_interval:10. ~slo_budget:0.05 () in
  Telemetry.set_meta tele "model" (J.String "mlp");
  Telemetry.set_meta tele "horizon" (J.Float 100.);
  Telemetry.span tele ~lane:"chip0" ~ts:0. ~dur:50. "prefill";
  Telemetry.span tele ~lane:"chip1" ~ts:0. ~dur:25. "decode";
  Telemetry.span tele ~lane:"fleet" ~ts:0. ~dur:10. "queue";
  Telemetry.mark tele ~lane:"chip1" ~ts:30. "fault";
  Timeline.record (Telemetry.timeline tele) ~now:0. [ ("queue_depth", 3.) ];
  Timeline.force (Telemetry.timeline tele) ~now:100. [ ("queue_depth", 0.) ];
  Telemetry.set_extra tele "drift"
    (J.Obj
       [ ("source", J.String "test");
         ("summary",
          J.List
            [ J.Obj
                [ ("mode", J.String "cim/intra");
                  ("predicted", J.Float 100.);
                  ("measured", J.Float 110.);
                  ("drift_pct", J.Float 10.) ] ]);
         ("rows", J.List []) ]);
  Telemetry.set_extra tele "slo"
    (Telemetry.slo_summary ~budget:0.05 ~violations:1 ~completed:10);
  (* render from the parsed-back document, exactly as `cmswitch report`
     does on a file from a previous run *)
  let md = Telemetry.report (J.of_string (J.to_string (Telemetry.to_json tele))) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true (has_sub md needle))
    [ "# cmswitch telemetry report"; "## Run"; "## Serving"; "## Latency";
      "p999"; "## Request phases"; "## Chip utilization";
      "## Cost-model drift"; "## SLO error budget"; "## Timeline";
      "serving.completed"; "serving.latency_cycles"; "cim/intra"; "+10.00%";
      (* chip0 is busy 50 of the 100-cycle horizon *)
      "| chip0 | 50 | 50.0% |"; "queue_depth" ];
  (* the fleet lane must not appear in the utilization table *)
  Alcotest.(check bool) "fleet lane not a chip" false (has_sub md "| fleet |");
  (* a document with none of the optional members renders just the title *)
  let bare = Telemetry.report (J.Obj []) in
  Alcotest.(check bool) "bare document renders no sections" false
    (has_sub bare "## ")

let suite =
  ( "obs",
    [
      Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
      Alcotest.test_case "json malformed" `Quick test_json_malformed;
      Alcotest.test_case "span nesting" `Quick test_span_nesting;
      Alcotest.test_case "span survives raise" `Quick test_span_survives_raise;
      Alcotest.test_case "monotone clock across domains" `Quick
        test_monotone_clock_across_domains;
      Alcotest.test_case "buffered spans merge" `Quick test_buffered_merge;
      Alcotest.test_case "atomic metrics across domains" `Quick
        test_atomic_metrics_across_domains;
      Alcotest.test_case "metrics accumulation" `Quick test_metrics_accumulation;
      Alcotest.test_case "disabled is no-op" `Quick test_disabled_noop;
      Alcotest.test_case "disabled overhead guard" `Quick test_disabled_overhead;
      Alcotest.test_case "golden compile trace" `Quick test_compile_trace;
      Alcotest.test_case "trace file round-trip" `Quick test_write_file;
      Alcotest.test_case "bounded histogram" `Quick test_histogram_bounded;
      Alcotest.test_case "trace ring buffer" `Quick test_trace_ring;
      QCheck_alcotest.to_alcotest prop_json_roundtrip;
      Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
      Alcotest.test_case "openmetrics name sanitizer" `Quick
        test_openmetrics_sanitize;
      Alcotest.test_case "openmetrics grammar" `Quick test_openmetrics_grammar;
      Alcotest.test_case "timeline sampling" `Quick test_timeline_sampling;
      Alcotest.test_case "timeline codec" `Quick test_timeline_codec;
      Alcotest.test_case "telemetry collector" `Quick test_telemetry_collector;
      Alcotest.test_case "telemetry report" `Quick test_telemetry_report;
    ] )
