(* The parallel-compilation determinism contract: a compile at --jobs N is
   byte-identical to the serial compile — programs, plans, DP stats, and
   metrics (modulo the wall-clock compile.seconds histogram). Checked two
   ways: jobs=1 vs jobs=4 fingerprints compared in-process, and both against
   golden fixtures under test/golden/ (tolerance-free; refresh with
   CMSWITCH_UPDATE_GOLDEN=1 dune runtest). *)

module Config = Cim_arch.Config
module Zoo = Cim_models.Zoo
module Workload = Cim_models.Workload
module Cmswitch = Cim_compiler.Cmswitch
module Segment = Cim_compiler.Segment
module Plan = Cim_compiler.Plan
module Flow = Cim_metaop.Flow
module Metrics = Cim_obs.Metrics

let chip = Config.dynaplasia
let models = [ "resnet18"; "bert-large"; "llama2-7b" ]

(* the e2e graphs of the compile-time experiment: CNNs whole, transformers
   one reused block *)
let graph_of key =
  let e = Option.get (Zoo.find key) in
  match e.Zoo.family with
  | Zoo.Cnn -> e.Zoo.build (Workload.prefill ~batch:1 1)
  | Zoo.Encoder_only -> (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 64)
  | Zoo.Decoder_only -> (Option.get e.Zoo.layer) (Workload.decode ~batch:1 64)

let config_with_jobs jobs = Cmswitch.Config.(with_jobs jobs default)

type fingerprint = {
  program : string;
  schedule : Plan.schedule;      (* structural, exact-float comparison *)
  stats : Segment.stats;
  metrics : string list;         (* markdown lines, wall-clock entries dropped *)
}

let substring needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* every solver/compiler metric must agree across job counts; only the
   wall-clock instruments (compile.seconds and compile.pass.*.seconds
   histograms, *.wall_seconds solver counters) may differ *)
let metrics_lines () =
  Metrics.to_markdown () |> String.split_on_char '\n'
  |> List.filter (fun l ->
         not
           (substring "compile.seconds" l || substring "wall_seconds" l
           || substring "compile.pass." l))

let compile_fp ~jobs key =
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      let r = Cmswitch.compile ~config:(config_with_jobs jobs) chip (graph_of key) in
      { program = Flow.to_string r.Cmswitch.program;
        schedule = r.Cmswitch.schedule;
        stats = r.Cmswitch.dp_stats;
        metrics = metrics_lines () })

(* ---- jobs=1 vs jobs=4 ---------------------------------------------------- *)

let test_determinism key () =
  let serial = compile_fp ~jobs:1 key in
  let par = compile_fp ~jobs:4 key in
  Alcotest.(check string) "program bytes" serial.program par.program;
  Alcotest.(check bool) "schedule (plans, exact floats)" true
    (serial.schedule = par.schedule);
  Alcotest.(check bool) "DP stats" true (serial.stats = par.stats);
  Alcotest.(check (list string)) "metrics" serial.metrics par.metrics

(* ---- golden fixtures ----------------------------------------------------- *)

(* under `dune runtest` the cwd is _build/default/test with the fixtures
   copied in as deps; under `dune exec` from the project root they sit in
   test/golden. Refresh mode prefers the source tree so the new fixtures
   land in version control, not the build sandbox. *)
let golden_dir () =
  List.find_opt Sys.file_exists [ "../../../test/golden"; "test/golden"; "golden" ]

let golden_read_path key =
  Filename.concat (Option.value (golden_dir ()) ~default:"golden") (key ^ ".txt")

let golden_write_path = golden_read_path

let render_fingerprint key fp =
  let b = Buffer.create 1024 in
  let s = fp.schedule in
  Buffer.add_string b
    (Printf.sprintf "model=%s chip=%s\n" key chip.Cim_arch.Chip.name);
  Buffer.add_string b
    (Printf.sprintf "stats candidates=%d pruned=%d solves=%d hits=%d\n"
       fp.stats.Segment.candidates fp.stats.Segment.pruned_infeasible
       fp.stats.Segment.mip_solves fp.stats.Segment.mip_cache_hits);
  (* %h renders the exact bits: any drift in the float pipeline shows *)
  Buffer.add_string b
    (Printf.sprintf "total_cycles=%h\nintra=%h writeback=%h switch=%h rewrite=%h\n"
       s.Plan.total_cycles s.Plan.intra s.Plan.writeback s.Plan.switch
       s.Plan.rewrite);
  List.iter
    (fun (p : Plan.seg_plan) ->
      Buffer.add_string b
        (Printf.sprintf "seg %d..%d intra=%h com=%d mem=%d used=%d\n" p.Plan.lo
           p.Plan.hi p.Plan.intra_cycles (Plan.com_total p) (Plan.mem_total p)
           (Plan.arrays_used p)))
    s.Plan.segments;
  Buffer.add_string b
    (Printf.sprintf "program_md5=%s\n" (Digest.to_hex (Digest.string fp.program)));
  Buffer.contents b

let test_golden key () =
  let fp = compile_fp ~jobs:1 key in
  let rendered = render_fingerprint key fp in
  if Sys.getenv_opt "CMSWITCH_UPDATE_GOLDEN" = Some "1" then begin
    let path = golden_write_path key in
    let oc = open_out path in
    output_string oc rendered;
    close_out oc;
    Printf.printf "golden fixture refreshed: %s\n" path
  end
  else begin
    let path = golden_read_path key in
    if not (Sys.file_exists path) then
      Alcotest.failf "missing fixture %s — run CMSWITCH_UPDATE_GOLDEN=1 dune runtest"
        path;
    let ic = open_in path in
    let expected =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    if expected <> rendered then
      Printf.printf
        "golden mismatch for %s: if the change is intentional, refresh with \
         CMSWITCH_UPDATE_GOLDEN=1 dune runtest\n"
        key;
    Alcotest.(check string) (key ^ " fingerprint") expected rendered
  end

let suite =
  ( "parallel",
    List.concat_map
      (fun key ->
        [ Alcotest.test_case (key ^ " jobs=1 = jobs=4") `Quick (test_determinism key);
          Alcotest.test_case (key ^ " golden fingerprint") `Quick (test_golden key) ])
      models )
