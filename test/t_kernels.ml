(* Differential tests for the Bigarray kernel engine: the boxed seed loops
   in Ops/Quant are the oracle, and the fast backend must reproduce them
   bit for bit — exact integer equality on the quantized path, identical
   float bits on the float path (the determinism contract in kernels.mli).
   Also covers the batched-matmul offset indexing, the quantisation
   rounding/clamp edges, and the functional simulator's byte-identity
   across backends and job counts (in-process and against a golden
   fixture; refresh with CMSWITCH_UPDATE_GOLDEN=1 dune runtest). *)

module Kernels = Cim_tensor.Kernels
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Ops = Cim_tensor.Ops
module Quant = Cim_tensor.Quant
module Rng = Cim_util.Rng
module Functional = Cim_sim.Functional
module Cmswitch = Cim_compiler.Cmswitch

let chip = Cim_arch.Config.dynaplasia

(* ---- generators ---------------------------------------------------------- *)

(* Shape dims are >= 1 (Shape rejects zero dims); 1 is the degenerate
   extreme. Values mix smooth, exact-integer and zero entries so the
   zero-skip branch and both int8 code paths (narrow m < 8 and wide) get
   exercised. *)
let gen_values n =
  let open QCheck.Gen in
  let* style = int_range 0 2 in
  let gen_one =
    match style with
    | 0 -> float_range (-2.) 2.
    | 1 -> map float_of_int (int_range (-3) 3)
    | _ ->
      let* z = int_range 0 2 in
      if z = 0 then return 0. else float_range (-1.) 1.
  in
  let rec go acc i = if i = 0 then return acc else
      let* x = gen_one in
      go (x :: acc) (i - 1)
  in
  map Array.of_list (go [] n)

type mm_case = {
  batch : int option * bool;  (* batch dim, right operand batched too *)
  m : int; k : int; n : int;
  av : float array; bv : float array;
}

let gen_mm =
  let open QCheck.Gen in
  let* m = int_range 1 12 in
  let* k = int_range 1 20 in
  let* n = int_range 1 20 in
  let* kind = int_range 0 2 in
  let* bd = int_range 1 3 in
  let batch = if kind = 0 then (None, false) else (Some bd, kind = 2) in
  let asize = match batch with None, _ -> m * k | Some b, _ -> b * m * k in
  let bsize = match batch with _, true -> bd * k * n | _ -> k * n in
  let* av = gen_values asize in
  let* bv = gen_values bsize in
  return { batch; m; k; n; av; bv }

let print_mm c =
  let b = match c.batch with None, _ -> "2d" | Some b, r -> Printf.sprintf "b=%d%s" b (if r then " both" else "") in
  Printf.sprintf "%s m=%d k=%d n=%d" b c.m c.k c.n

let tensors_of c =
  let ash, bsh =
    match c.batch with
    | None, _ -> ([ c.m; c.k ], [ c.k; c.n ])
    | Some b, false -> ([ b; c.m; c.k ], [ c.k; c.n ])
    | Some b, true -> ([ b; c.m; c.k ], [ b; c.k; c.n ])
  in
  ( Tensor.create (Shape.of_list ash) c.av,
    Tensor.create (Shape.of_list bsh) c.bv )

let float_bits_equal x y =
  Array.length x = Array.length y
  && (let ok = ref true in
      Array.iteri
        (fun i v ->
          if Int64.bits_of_float v <> Int64.bits_of_float (Array.unsafe_get y i)
          then ok := false)
        x;
      !ok)

let both f = (Kernels.with_backend Kernels.Boxed f, Kernels.with_backend Kernels.Bigarray f)

(* ---- float matmul -------------------------------------------------------- *)

let matmul_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"matmul: Bigarray bitwise-equals boxed oracle"
       ~count:120
       (QCheck.make ~print:print_mm gen_mm)
       (fun c ->
         let a, b = tensors_of c in
         let boxed, big = both (fun () -> Ops.matmul a b) in
         if not (float_bits_equal (Tensor.data boxed) (Tensor.data big)) then
           QCheck.Test.fail_reportf "float bits diverge on %s" (print_mm c);
         true))

(* ---- int8 matmul --------------------------------------------------------- *)

type qmm_case = { qm : int; qk : int; qn : int; qa : int array; qb : int array }

let gen_qvalues n =
  let open QCheck.Gen in
  (* full int8 range incl. the saturation boundaries -128 and 127 *)
  let* style = int_range 0 1 in
  let one = if style = 0 then int_range (-128) 127 else oneofl [ -128; -127; -1; 0; 1; 127 ] in
  let rec go acc i = if i = 0 then return acc else
      let* x = one in go (x :: acc) (i - 1)
  in
  map Array.of_list (go [] n)

let gen_qmm =
  let open QCheck.Gen in
  (* m from 1 (narrow int8-Bigarray route) past 8 (float64 route) *)
  let* qm = int_range 1 16 in
  let* qk = int_range 1 24 in
  let* qn = int_range 1 24 in
  let* qa = gen_qvalues (qm * qk) in
  let* qb = gen_qvalues (qk * qn) in
  return { qm; qk; qn; qa; qb }

let print_qmm c = Printf.sprintf "m=%d k=%d n=%d" c.qm c.qk c.qn

let qmatmul_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"qmatmul: Bigarray accumulators exactly equal oracle"
       ~count:120
       (QCheck.make ~print:print_qmm gen_qmm)
       (fun c ->
         (* oracle: the seed triple loop over native ints *)
         let expect = Array.make (c.qm * c.qn) 0 in
         for i = 0 to c.qm - 1 do
           for j = 0 to c.qn - 1 do
             let acc = ref 0 in
             for p = 0 to c.qk - 1 do
               acc := !acc + (c.qa.((i * c.qk) + p) * c.qb.((p * c.qn) + j))
             done;
             expect.((i * c.qn) + j) <- !acc
           done
         done;
         let got = Kernels.qmatmul2d c.qa c.qb ~m:c.qm ~k:c.qk ~n:c.qn in
         if got <> expect then
           QCheck.Test.fail_reportf "accumulators diverge on %s" (print_qmm c);
         (* and through Quant.matmul, requantisation included *)
         let mk v m n =
           { Quant.values = v; scale = 0.05; shape = Shape.of_list [ m; n ] }
         in
         let qa = mk c.qa c.qm c.qk and qb = mk c.qb c.qk c.qn in
         let boxed, big = both (fun () -> Quant.matmul qa qb) in
         boxed.Quant.values = big.Quant.values
         && Int64.bits_of_float boxed.Quant.scale = Int64.bits_of_float big.Quant.scale))

(* ---- conv2d / im2col ----------------------------------------------------- *)

type conv_case = {
  cn : int; cc : int; ch : int; cw : int;
  coc : int; ckh : int; ckw : int;
  stride : int; pad : int; groups : int;
  cx : float array; cwt : float array; cb : float array option;
}

let gen_conv =
  let open QCheck.Gen in
  let* groups = oneofl [ 1; 1; 2 ] in
  let* cpg = int_range 1 3 in
  let* opg = int_range 1 3 in
  let cc = cpg * groups and coc = opg * groups in
  let* cn = int_range 1 2 in
  let* ckh = int_range 1 3 in
  let* ckw = int_range 1 3 in
  let* stride = int_range 1 3 in
  let* pad = int_range 0 2 in
  (* keep the output at least 1x1: h + 2p >= kh *)
  let* ch = int_range (max 1 (ckh - (2 * pad))) 7 in
  let* cw = int_range (max 1 (ckw - (2 * pad))) 7 in
  let* cx = gen_values (cn * cc * ch * cw) in
  let* cwt = gen_values (coc * cpg * ckh * ckw) in
  let* with_bias = bool in
  let* cb = if with_bias then map Option.some (gen_values coc) else return None in
  return { cn; cc; ch; cw; coc; ckh; ckw; stride; pad; groups; cx; cwt; cb }

let print_conv c =
  Printf.sprintf "n=%d c=%d h=%d w=%d oc=%d k=%dx%d s=%d p=%d g=%d bias=%b"
    c.cn c.cc c.ch c.cw c.coc c.ckh c.ckw c.stride c.pad c.groups
    (c.cb <> None)

let conv_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"conv2d: Bigarray bitwise-equals boxed oracle"
       ~count:60
       (QCheck.make ~print:print_conv gen_conv)
       (fun c ->
         let x = Tensor.create (Shape.of_list [ c.cn; c.cc; c.ch; c.cw ]) c.cx in
         let w =
           Tensor.create
             (Shape.of_list [ c.coc; c.cc / c.groups; c.ckh; c.ckw ])
             c.cwt
         in
         let bias = Option.map (fun b -> Tensor.create (Shape.of_list [ c.coc ]) b) c.cb in
         let run () =
           Ops.conv2d x ~weight:w ?bias ~stride:c.stride ~pad:c.pad
             ~groups:c.groups ()
         in
         let boxed, big = both run in
         if not (float_bits_equal (Tensor.data boxed) (Tensor.data big)) then
           QCheck.Test.fail_reportf "conv bits diverge on %s" (print_conv c);
         true))

let im2col_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"im2col: Bigarray bitwise-equals boxed oracle"
       ~count:30
       (QCheck.make ~print:print_conv gen_conv)
       (fun c ->
         let x = Tensor.create (Shape.of_list [ c.cn; c.cc; c.ch; c.cw ]) c.cx in
         let run () = Ops.im2col x ~kh:c.ckh ~kw:c.ckw ~stride:c.stride ~pad:c.pad in
         let boxed, big = both run in
         float_bits_equal (Tensor.data boxed) (Tensor.data big)))

(* ---- batched matmul = looped 2-d (offset-indexing regression) ------------- *)

let test_batched_vs_looped () =
  let rng = Rng.create 5 in
  let bd = 3 and m = 5 and k = 7 and n = 4 in
  let a = Tensor.rand rng (Shape.of_list [ bd; m; k ]) ~lo:(-1.) ~hi:1. in
  let b = Tensor.rand rng (Shape.of_list [ k; n ]) ~lo:(-1.) ~hi:1. in
  let b3 = Tensor.rand rng (Shape.of_list [ bd; k; n ]) ~lo:(-1.) ~hi:1. in
  List.iter
    (fun backend ->
      Kernels.with_backend backend (fun () ->
          let slice t i rows cols =
            Tensor.create (Shape.of_list [ rows; cols ])
              (Array.sub (Tensor.data t) (i * rows * cols) (rows * cols))
          in
          let batched = Ops.matmul a b in
          let batched2 = Ops.matmul a b3 in
          for bi = 0 to bd - 1 do
            let looped = Ops.matmul (slice a bi m k) b in
            Alcotest.(check bool)
              (Printf.sprintf "%s: half-batched slice %d"
                 (Kernels.backend_to_string backend) bi)
              true
              (float_bits_equal (Tensor.data looped)
                 (Array.sub (Tensor.data batched) (bi * m * n) (m * n)));
            let looped2 = Ops.matmul (slice a bi m k) (slice b3 bi k n) in
            Alcotest.(check bool)
              (Printf.sprintf "%s: fully-batched slice %d"
                 (Kernels.backend_to_string backend) bi)
              true
              (float_bits_equal (Tensor.data looped2)
                 (Array.sub (Tensor.data batched2) (bi * m * n) (m * n)))
          done))
    [ Kernels.Boxed; Kernels.Bigarray ]

(* ---- quantisation edges --------------------------------------------------- *)

let test_quant_edges () =
  (* clamp saturates at the int8 boundaries *)
  Alcotest.(check int) "clamp 127" 127 (Kernels.clamp_i8 127);
  Alcotest.(check int) "clamp 128" 127 (Kernels.clamp_i8 128);
  Alcotest.(check int) "clamp -128" (-128) (Kernels.clamp_i8 (-128));
  Alcotest.(check int) "clamp -129" (-128) (Kernels.clamp_i8 (-129));
  (* symmetric quantisation maps +-max to +-127 exactly *)
  let t = Tensor.create (Shape.of_list [ 3 ]) [| 1.0; -1.0; 0.5 |] in
  List.iter
    (fun backend ->
      Kernels.with_backend backend (fun () ->
          let q = Quant.quantize t in
          Alcotest.(check (array int))
            (Kernels.backend_to_string backend ^ ": boundary values")
            [| 127; -127; 64 |] q.Quant.values))
    [ Kernels.Boxed; Kernels.Bigarray ];
  (* rounding ties go away from zero (Float.round), identically on both
     backends: with scale = 1, +-0.5 and +-2.5 are exact ties *)
  let ties = [| 0.5; -0.5; 2.5; -2.5; 1.49; -1.49 |] in
  let expect = [| 1; -1; 3; -3; 1; -1 |] in
  List.iter
    (fun backend ->
      Kernels.with_backend backend (fun () ->
          Alcotest.(check (array int))
            (Kernels.backend_to_string backend ^ ": ties away from zero")
            expect
            (Kernels.quantize_values ties ~scale:1.)))
    [ Kernels.Boxed; Kernels.Bigarray ];
  (* all-zero tensor quantises to scale 1, not NaN *)
  let z = Quant.quantize (Tensor.zeros (Shape.of_list [ 4 ])) in
  Alcotest.(check (float 0.)) "zero tensor scale" 1.0 z.Quant.scale;
  (* zero / negative in_scale must be rejected, not silently NaN *)
  List.iter
    (fun s ->
      match Quant.requantize [| 1; 2 |] (Shape.of_list [ 2 ]) ~in_scale:s with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "requantize accepted in_scale=%g" s)
    [ 0.; -1. ];
  (* requantised accumulators saturate into [-128, 127] *)
  let q = Quant.requantize [| 1000; -1000; 0 |] (Shape.of_list [ 3 ]) ~in_scale:1. in
  Alcotest.(check (array int)) "requantize saturation bounds" [| 127; -127; 0 |]
    q.Quant.values

let test_backend_of_string () =
  Alcotest.(check bool) "boxed" true (Kernels.backend_of_string "Boxed" = Ok Kernels.Boxed);
  Alcotest.(check bool) "bigarray" true
    (Kernels.backend_of_string " bigarray " = Ok Kernels.Bigarray);
  Alcotest.(check bool) "junk rejected" true
    (match Kernels.backend_of_string "vulkan" with Error _ -> true | Ok _ -> false)

(* ---- functional simulator byte-identity ----------------------------------- *)

let sim_cases () =
  let rng = Rng.create 31 in
  let mlp = Cim_models.Mlp.build ~rng ~batch:2 ~dims:[ 64; 128; 32 ] () in
  let mlp_x = Tensor.rand rng (Shape.of_list [ 2; 64 ]) ~lo:(-1.) ~hi:1. in
  let cnn = Cim_models.Cnn.tiny_cnn ~rng ~batch:2 () in
  let cnn_x = Tensor.rand rng (Shape.of_list [ 2; 2; 8; 8 ]) ~lo:(-1.) ~hi:1. in
  [ ("mlp", mlp, [ ("x", mlp_x) ]); ("tiny-cnn", cnn, [ ("image", cnn_x) ]) ]

let sim_digests () =
  List.map
    (fun (name, g, inputs) ->
      let r = Cmswitch.compile chip g in
      let digest ~jobs ~backend =
        Functional.digest
          (Functional.run chip ~jobs ~backend g r.Cmswitch.program ~inputs)
      in
      let d_big1 = digest ~jobs:1 ~backend:Kernels.Bigarray in
      let d_big4 = digest ~jobs:4 ~backend:Kernels.Bigarray in
      let d_box1 = digest ~jobs:1 ~backend:Kernels.Boxed in
      let d_box4 = digest ~jobs:4 ~backend:Kernels.Boxed in
      Alcotest.(check string) (name ^ ": bigarray jobs=4 = jobs=1") d_big1 d_big4;
      Alcotest.(check string) (name ^ ": boxed jobs=4 = jobs=1") d_box1 d_box4;
      Alcotest.(check string) (name ^ ": boxed = bigarray") d_big1 d_box1;
      (name, [ (Kernels.Boxed, d_box1); (Kernels.Bigarray, d_big1) ]))
    (sim_cases ())

let test_sim_byte_identity () = ignore (sim_digests ())

(* golden fixture: one digest line per (model, backend) so any drift in the
   kernels, the quantised pipeline or the digest itself is caught against
   version control, per backend *)
let golden_dir () =
  List.find_opt Sys.file_exists [ "../../../test/golden"; "test/golden"; "golden" ]

let golden_path () =
  Filename.concat (Option.value (golden_dir ()) ~default:"golden") "functional_sim.txt"

let render_digests ds =
  String.concat ""
    (List.concat_map
       (fun (name, per_backend) ->
         List.map
           (fun (b, d) ->
             Printf.sprintf "%s %s %s\n" name (Kernels.backend_to_string b) d)
           per_backend)
       ds)

let test_sim_golden () =
  let rendered = render_digests (sim_digests ()) in
  let path = golden_path () in
  if Sys.getenv_opt "CMSWITCH_UPDATE_GOLDEN" = Some "1" then begin
    let oc = open_out path in
    output_string oc rendered;
    close_out oc;
    Printf.printf "golden fixture refreshed: %s\n" path
  end
  else begin
    if not (Sys.file_exists path) then
      Alcotest.failf "missing fixture %s — run CMSWITCH_UPDATE_GOLDEN=1 dune runtest" path;
    let ic = open_in path in
    let expected =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    if expected <> rendered then
      Printf.printf
        "golden mismatch for %s: if the change is intentional, refresh with \
         CMSWITCH_UPDATE_GOLDEN=1 dune runtest\n"
        path;
    Alcotest.(check string) "functional-sim digests match fixture" expected rendered
  end

let suite =
  ( "kernels",
    [ matmul_differential;
      qmatmul_differential;
      conv_differential;
      im2col_differential;
      Alcotest.test_case "batched matmul = looped 2-d" `Quick test_batched_vs_looped;
      Alcotest.test_case "quantisation edges" `Quick test_quant_edges;
      Alcotest.test_case "backend_of_string" `Quick test_backend_of_string;
      Alcotest.test_case "functional sim byte-identity" `Quick test_sim_byte_identity;
      Alcotest.test_case "functional sim golden digests" `Quick test_sim_golden ] )
