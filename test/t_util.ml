(* Unit and property tests for Cim_util: statistics, deterministic RNG,
   table rendering, byte-size helpers. *)

open Cim_util

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_f ?(eps = 1e-9) what expected got =
  Alcotest.(check bool) (Printf.sprintf "%s: %g vs %g" what expected got) true
    (feq ~eps expected got)

(* --- Stats --- *)

let test_mean () =
  check_f "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_f "mean singleton" 5. (Stats.mean [ 5. ]);
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty list")
    (fun () -> ignore (Stats.mean []))

let test_geomean () =
  check_f "geomean" 2. (Stats.geomean [ 1.; 2.; 4. ]);
  check_f "geomean of equal" 3. (Stats.geomean [ 3.; 3.; 3. ]);
  Alcotest.check_raises "geomean nonpositive"
    (Invalid_argument "Stats.geomean: non-positive value") (fun () ->
      ignore (Stats.geomean [ 1.; 0. ]))

let test_stdev () =
  check_f "stdev singleton" 0. (Stats.stdev [ 42. ]);
  check_f ~eps:1e-6 "stdev" 1. (Stats.stdev [ 1.; 2.; 3. ])

let test_percentile () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  check_f "p0" 10. (Stats.percentile 0. xs);
  check_f "p100" 40. (Stats.percentile 100. xs);
  check_f "p50" 25. (Stats.percentile 50. xs);
  check_f "median odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  Alcotest.check_raises "percentile range"
    (Invalid_argument "Stats.percentile: p out of [0,100]") (fun () ->
      ignore (Stats.percentile 101. xs))

let test_percentile_nan () =
  let xs = [ 10.; Float.nan; 30. ] in
  Alcotest.check_raises "percentile NaN input"
    (Invalid_argument "Stats.percentile: NaN in input") (fun () ->
      ignore (Stats.percentile 50. xs));
  Alcotest.check_raises "nearest-rank NaN input"
    (Invalid_argument "Stats.percentile_nearest_rank: NaN in input") (fun () ->
      ignore (Stats.percentile_nearest_rank 50. xs));
  Alcotest.check_raises "percentile NaN p"
    (Invalid_argument "Stats.percentile: p is NaN") (fun () ->
      ignore (Stats.percentile Float.nan [ 1.; 2. ]));
  Alcotest.check_raises "nearest-rank NaN p"
    (Invalid_argument "Stats.percentile_nearest_rank: p is NaN") (fun () ->
      ignore (Stats.percentile_nearest_rank Float.nan [ 1.; 2. ]));
  (* infinities are legal and must sort totally (Float.compare, not
     polymorphic compare) *)
  Alcotest.(check bool) "p100 with +inf" true
    (Stats.percentile 100. [ 1.; Float.infinity; 0. ] = Float.infinity);
  Alcotest.(check bool) "p0 with -inf" true
    (Stats.percentile 0. [ 1.; Float.neg_infinity; 0. ] = Float.neg_infinity)

let test_nearest_rank () =
  let xs = [ 40.; 10.; 30.; 20. ] in
  check_f "nr p95 = max" 40. (Stats.percentile_nearest_rank 95. xs);
  check_f "nr p50" 20. (Stats.percentile_nearest_rank 50. xs);
  check_f "nr p0 = min" 10. (Stats.percentile_nearest_rank 0. xs)

let test_normalize () =
  Alcotest.(check (list (float 1e-9))) "normalize" [ 0.5; 1. ]
    (Stats.normalize_to_max [ 2.; 4. ]);
  Alcotest.(check (list (float 1e-9))) "normalize empty" [] (Stats.normalize_to_max []);
  Alcotest.(check (list (float 1e-9))) "normalize zeros" [ 0.; 0. ]
    (Stats.normalize_to_max [ 0.; 0. ])

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile lies within min/max" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 20) (float_range (-100.) 100.)) (float_range 0. 100.))
    (fun (xs, p) ->
      let v = Cim_util.Stats.percentile p xs in
      v >= Cim_util.Stats.minimum xs -. 1e-9 && v <= Cim_util.Stats.maximum xs +. 1e-9)

let prop_geomean_between =
  QCheck.Test.make ~name:"geomean between min and max" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.001 1000.))
    (fun xs ->
      let g = Cim_util.Stats.geomean xs in
      g >= Cim_util.Stats.minimum xs -. 1e-6 && g <= Cim_util.Stats.maximum xs +. 1e-6)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 1 and b = Rng.create 1 in
  let xs = List.init 32 (fun _ -> Rng.int a 1000) in
  let ys = List.init 32 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create 2 in
  let zs = List.init 32 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed, different stream" true (xs <> zs)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "int in bounds" true (v >= 0 && v < 7);
    let f = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in bounds" true (f >= 0. && f < 2.5);
    let r = Rng.int_range rng (-3) 4 in
    Alcotest.(check bool) "range in bounds" true (r >= -3 && r <= 4)
  done;
  Alcotest.check_raises "int bound positive"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_copy_split () =
  let rng = Rng.create 4 in
  ignore (Rng.int rng 10);
  let dup = Rng.copy rng in
  Alcotest.(check int) "copy continues identically" (Rng.int rng 1000) (Rng.int dup 1000);
  let child = Rng.split rng in
  Alcotest.(check bool) "split diverges" true
    (List.init 8 (fun _ -> Rng.int child 1000)
    <> List.init 8 (fun _ -> Rng.int rng 1000))

let test_rng_gaussian () =
  let rng = Rng.create 5 in
  let n = 5000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng ~mu:2. ~sigma:3.) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "gaussian mean" true (Float.abs (m -. 2.) < 0.2);
  let s = Stats.stdev xs in
  Alcotest.(check bool) "gaussian stdev" true (Float.abs (s -. 3.) < 0.2)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let arr = Array.of_list xs in
      Cim_util.Rng.shuffle (Cim_util.Rng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare xs)

(* --- Table --- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"demo" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "longer"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "title present" true (String.length s > 4 && String.sub s 0 4 = "demo");
  Alcotest.(check bool) "contains row" true (contains s "longer");
  Alcotest.(check bool) "contains cell" true (contains s "| x")

let test_table_csv () =
  let t = Table.create ~title:"csv demo" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "plain"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "with,comma"; "say \"hi\"" ];
  let csv = Table.render_csv t in
  Alcotest.(check string) "csv content"
    "a,b\nplain,1\n\"with,comma\",\"say \"\"hi\"\"\"\n" csv

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "speedup" "1.31x" (Table.cell_speedup 1.311);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 0.125);
  Alcotest.(check string) "si k" "1.50k" (Table.cell_si 1500.);
  Alcotest.(check string) "si M" "2.00M" (Table.cell_si 2e6);
  Alcotest.(check string) "si G" "3.00G" (Table.cell_si 3e9);
  Alcotest.(check string) "fixed" "2.7" (Table.cell_f ~digits:1 2.71)

(* --- Bytesize --- *)

let test_bytesize () =
  Alcotest.(check int) "kib" 1024 (Bytesize.kib 1);
  Alcotest.(check int) "mib" (1024 * 1024) (Bytesize.mib 1);
  Alcotest.(check string) "pretty KiB" "80.00 KiB" (Bytesize.to_string (Bytesize.kib 80));
  Alcotest.(check string) "pretty B" "37 B" (Bytesize.to_string 37);
  Alcotest.(check int) "of_bits" 2 (Bytesize.of_bits 9);
  Alcotest.(check int) "ceil_div exact" 3 (Bytesize.ceil_div 9 3);
  Alcotest.(check int) "ceil_div up" 4 (Bytesize.ceil_div 10 3);
  Alcotest.(check int) "ceil_div zero" 0 (Bytesize.ceil_div 0 5);
  Alcotest.check_raises "ceil_div bad divisor"
    (Invalid_argument "Bytesize.ceil_div: non-positive divisor") (fun () ->
      ignore (Bytesize.ceil_div 1 0))

let prop_ceil_div =
  QCheck.Test.make ~name:"ceil_div is ceiling" ~count:500
    QCheck.(pair (int_bound 10000) (int_range 1 100))
    (fun (a, b) ->
      let q = Cim_util.Bytesize.ceil_div a b in
      (q * b >= a) && ((q - 1) * b < a))

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "util",
    [
      Alcotest.test_case "stats mean" `Quick test_mean;
      Alcotest.test_case "stats geomean" `Quick test_geomean;
      Alcotest.test_case "stats stdev" `Quick test_stdev;
      Alcotest.test_case "stats percentile" `Quick test_percentile;
      Alcotest.test_case "stats percentile NaN guard" `Quick test_percentile_nan;
      Alcotest.test_case "stats nearest rank" `Quick test_nearest_rank;
      Alcotest.test_case "stats normalize" `Quick test_normalize;
      qtest prop_percentile_bounds;
      qtest prop_geomean_between;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng copy/split" `Quick test_rng_copy_split;
      Alcotest.test_case "rng gaussian moments" `Quick test_rng_gaussian;
      qtest prop_shuffle_is_permutation;
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "table csv" `Quick test_table_csv;
      Alcotest.test_case "table arity" `Quick test_table_arity;
      Alcotest.test_case "table cells" `Quick test_table_cells;
      Alcotest.test_case "bytesize" `Quick test_bytesize;
      qtest prop_ceil_div;
    ] )
