(* The unified Cmswitch.Config record: builder combinators, the slotting
   into the engine's internal options records, and — the part the
   compilation cache depends on — the canonical serialization. [canonical] must be a stable
   total function of the semantic fields (fixed field order, exact hex
   floats) and [of_canonical] its strict inverse, so that
   serialize -> parse -> serialize is a byte-for-byte fixed point. *)

module Cmswitch = Cim_compiler.Cmswitch
module Cfg = Cim_compiler.Cmswitch.Config
module Segment = Cim_compiler.Segment
module Alloc = Cim_compiler.Alloc
module Bucket = Cim_compiler.Bucket
module Milp = Cim_solver.Milp

let sample_configs =
  [
    Cfg.default;
    Cfg.(default |> with_partition_fraction 0.25);
    (* a fraction with no short decimal form: exercises the hex printer *)
    Cfg.(default |> with_partition_fraction (1. /. 3.));
    Cfg.(default |> with_max_segment_ops 3);
    Cfg.(default |> with_memoize false);
    Cfg.(default |> with_milp_max_nodes 17);
    Cfg.(default |> with_refine false);
    Cfg.(default |> with_force_all_compute true);
    Cfg.(default |> with_lp_backend Milp.Dense);
    Cfg.(default |> with_buckets (Some Bucket.default));
    Cfg.(default |> with_buckets (Some (Bucket.pow2 ~min_ceiling:16 ~max_ceiling:4096 ())));
    Cfg.(default |> with_buckets (Some (Bucket.explicit [ 32; 64; 128; 512 ])));
    Cfg.(
      default |> with_partition_fraction 0.75 |> with_max_segment_ops 6
      |> with_memoize false |> with_milp_max_nodes 123 |> with_refine false
      |> with_force_all_compute true |> with_lp_backend Milp.Dense
      |> with_buckets (Some (Bucket.explicit [ 1; 7; 2048 ])));
  ]

let test_canonical_fixed_point () =
  List.iter
    (fun c ->
      let s = Cfg.canonical c in
      match Cfg.of_canonical s with
      | Error e -> Alcotest.failf "of_canonical rejected %s: %s" s e
      | Ok c' ->
        Alcotest.(check string) ("fixed point of " ^ s) s (Cfg.canonical c'))
    sample_configs

let test_canonical_field_order_stable () =
  (* the exact default serialization is a compatibility surface: changing
     field order, float formatting, or the version tag silently invalidates
     every cache on disk, so any intentional change must bump the version
     (v1 -> v2 added the buckets field) *)
  Alcotest.(check string) "default canonical"
    "cmswitch.config.v2{partition_fraction=0x1p-1;max_segment_ops=10;memoize=true;milp_max_nodes=600;refine=true;force_all_compute=false;lp_backend=revised;buckets=none}"
    (Cfg.canonical Cfg.default);
  Alcotest.(check string) "bucketed canonical"
    "cmswitch.config.v2{partition_fraction=0x1p-1;max_segment_ops=10;memoize=true;milp_max_nodes=600;refine=true;force_all_compute=false;lp_backend=revised;buckets=buckets.v1(pow2:32:2048)}"
    (Cfg.canonical Cfg.(default |> with_buckets (Some Bucket.default)))

let test_canonical_excludes_execution_knobs () =
  (* jobs / faults / cache are not semantics: two configs differing only
     there must share one cache key *)
  let base = Cfg.canonical Cfg.default in
  Alcotest.(check string) "jobs excluded" base
    (Cfg.canonical Cfg.(default |> with_jobs 7));
  let fm = Cim_arch.Faultmap.inject Cim_arch.Config.dynaplasia ~seed:1 ~dead_rate:0.1 () in
  Alcotest.(check string) "faults excluded" base
    (Cfg.canonical Cfg.(default |> with_faults (Some fm)))

let test_of_canonical_rejects_garbage () =
  let reject s =
    match Cfg.of_canonical s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "of_canonical accepted %S" s
  in
  reject "";
  reject "not a config";
  (* the retired v1 tag (and any other version) is rejected wholesale *)
  reject
    "cmswitch.config.v1{partition_fraction=0x1p-1;max_segment_ops=10;memoize=true;milp_max_nodes=600;refine=true;force_all_compute=false;lp_backend=revised}";
  reject "cmswitch.config.v3{partition_fraction=0x1p-1}";
  (* missing closing brace *)
  reject "cmswitch.config.v2{partition_fraction=0x1p-1";
  (* missing fields *)
  reject "cmswitch.config.v2{partition_fraction=0x1p-1}";
  (* bad value types *)
  reject
    "cmswitch.config.v2{partition_fraction=abc;max_segment_ops=10;memoize=true;milp_max_nodes=600;refine=true;force_all_compute=false;lp_backend=revised;buckets=none}";
  reject
    "cmswitch.config.v2{partition_fraction=0x1p-1;max_segment_ops=10;memoize=true;milp_max_nodes=600;refine=true;force_all_compute=false;lp_backend=cplex;buckets=none}";
  (* malformed bucket policies *)
  reject
    "cmswitch.config.v2{partition_fraction=0x1p-1;max_segment_ops=10;memoize=true;milp_max_nodes=600;refine=true;force_all_compute=false;lp_backend=revised;buckets=pow2}";
  reject
    "cmswitch.config.v2{partition_fraction=0x1p-1;max_segment_ops=10;memoize=true;milp_max_nodes=600;refine=true;force_all_compute=false;lp_backend=revised;buckets=buckets.v1(pow2:64:32)}";
  reject
    "cmswitch.config.v2{partition_fraction=0x1p-1;max_segment_ops=10;memoize=true;milp_max_nodes=600;refine=true;force_all_compute=false;lp_backend=revised;buckets=buckets.v1(list:64,32)}"

let test_options_bridge () =
  (* the flattened fields land in the right nested slots *)
  let c =
    Cfg.(
      default |> with_jobs 3 |> with_max_segment_ops 4 |> with_memoize false
      |> with_milp_max_nodes 55 |> with_force_all_compute true)
  in
  let seg = Cfg.to_segment_options c in
  Alcotest.(check int) "segment jobs" 3 seg.Segment.jobs;
  Alcotest.(check int) "segment window" 4 seg.Segment.max_segment_ops;
  Alcotest.(check bool) "segment memoize" false seg.Segment.memoize;
  let al = Cfg.to_alloc_options c in
  Alcotest.(check int) "alloc nodes" 55 al.Alloc.milp_max_nodes;
  Alcotest.(check bool) "alloc forced" true al.Alloc.force_all_compute

(* random but valid bucket policy, derived from three small ints: none,
   pow2 with arbitrary bounds, or an explicit boundary list *)
let bucket_of_ints kind a b =
  let a = 1 + (abs a mod 4096) and b = 1 + (abs b mod 4096) in
  let lo = min a b and hi = max a b in
  match abs kind mod 3 with
  | 0 -> None
  | 1 -> Some (Bucket.pow2 ~min_ceiling:lo ~max_ceiling:hi ())
  | _ -> Some (Bucket.explicit [ lo; hi; lo + hi ])

let prop_canonical_round_trip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"canonical round-trip is a fixed point" ~count:300
       QCheck.(
         pair
           (quad (float_bound_exclusive 1.) (int_range 1 64) bool
              (int_range 0 100_000))
           (triple small_int small_int small_int))
       (fun ((frac, window, memo, nodes), (bk, ba, bb)) ->
         let c =
           Cfg.(
             default
             |> with_partition_fraction (frac +. 1e-3)
             |> with_max_segment_ops window |> with_memoize memo
             |> with_milp_max_nodes nodes
             |> with_buckets (bucket_of_ints bk ba bb))
         in
         let s = Cfg.canonical c in
         match Cfg.of_canonical s with
         | Error _ -> false
         | Ok c' -> Cfg.canonical c' = s))

let suite =
  ( "config",
    [
      Alcotest.test_case "canonical fixed point" `Quick test_canonical_fixed_point;
      Alcotest.test_case "canonical field order stable" `Quick
        test_canonical_field_order_stable;
      Alcotest.test_case "canonical excludes execution knobs" `Quick
        test_canonical_excludes_execution_knobs;
      Alcotest.test_case "of_canonical rejects garbage" `Quick
        test_of_canonical_rejects_garbage;
      Alcotest.test_case "legacy options bridge" `Quick test_options_bridge;
      prop_canonical_round_trip;
    ] )
