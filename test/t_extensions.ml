(* Tests for the extension modules: the energy model, the discrete-event
   pipeline refinement, the greedy allocator baseline, the textual chip
   spec, and the extra zoo models (ViT, GPT-2 XL). *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Energy = Cim_arch.Energy
module Spec = Cim_arch.Spec
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Opinfo = Cim_compiler.Opinfo
module Alloc = Cim_compiler.Alloc
module Plan = Cim_compiler.Plan
module Segment = Cim_compiler.Segment
module Greedy = Cim_compiler.Greedy
module Pipeline = Cim_compiler.Pipeline
module Cmswitch = Cim_compiler.Cmswitch
module Energy_sim = Cim_sim.Energy_sim

let chip = Config.dynaplasia

(* --- energy profiles --- *)

let test_energy_profiles () =
  Alcotest.(check string) "edram name" "eDRAM" Energy.edram.Energy.profile_name;
  Alcotest.(check bool) "reram writes dear" true
    (Energy.reram.Energy.weight_write_pj_per_byte
    > 10. *. Energy.edram.Energy.weight_write_pj_per_byte);
  Alcotest.(check string) "prime picks reram" "ReRAM"
    (Energy.for_chip Config.prime).Energy.profile_name;
  Alcotest.(check string) "dynaplasia picks edram" "eDRAM"
    (Energy.for_chip chip).Energy.profile_name;
  Alcotest.check_raises "negative component"
    (Invalid_argument "Energy.validate: negative mac_pj") (fun () ->
      ignore (Energy.validate { Energy.edram with Energy.mac_pj = -1. }))

let compiled_mlp =
  lazy (Cmswitch.compile chip (Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 256 ] ()))

let test_energy_sim_accounting () =
  let r = Lazy.force compiled_mlp in
  let e = Energy_sim.run chip r.Cmswitch.program in
  let b = e.Energy_sim.energy in
  Alcotest.(check bool) "all components non-negative" true
    (b.Energy_sim.mac_uj >= 0. && b.Energy_sim.operand_uj >= 0.
    && b.Energy_sim.weight_uj >= 0. && b.Energy_sim.switch_uj >= 0.
    && b.Energy_sim.static_uj > 0.);
  Alcotest.(check (float 1e-9)) "total is the sum"
    (b.Energy_sim.mac_uj +. b.Energy_sim.operand_uj +. b.Energy_sim.weight_uj
    +. b.Energy_sim.switch_uj +. b.Energy_sim.static_uj)
    b.Energy_sim.total_uj;
  (* MAC energy is exactly mac_pj * total MACs of the program *)
  let total_macs =
    let rec walk acc (i : Cim_metaop.Flow.instr) =
      match i with
      | Cim_metaop.Flow.Parallel is -> List.fold_left walk acc is
      | Cim_metaop.Flow.Compute { macs; _ } -> acc +. macs
      | _ -> acc
    in
    List.fold_left walk 0. r.Cmswitch.program.Cim_metaop.Flow.instrs
  in
  Alcotest.(check (float 1e-9)) "mac energy"
    (Energy.edram.Energy.mac_pj *. total_macs /. 1e6)
    b.Energy_sim.mac_uj;
  Alcotest.(check bool) "EDP consistent" true
    (Float.abs
       (e.Energy_sim.edp_uj_ms
       -. (b.Energy_sim.total_uj *. e.Energy_sim.cycles
           /. (chip.Chip.freq_mhz *. 1e3)))
    < 1e-6 *. e.Energy_sim.edp_uj_ms)

let test_energy_empty_program () =
  let e = Energy_sim.run chip { Cim_metaop.Flow.source = "empty"; instrs = [] } in
  Alcotest.(check (float 0.)) "no dynamic energy" 0.
    (e.Energy_sim.energy.Energy_sim.mac_uj
    +. e.Energy_sim.energy.Energy_sim.operand_uj)

(* --- pipeline DES --- *)

let segment_of g =
  let ops = Opinfo.extract chip g in
  let segments, _ = Segment.run chip ops in
  let seg =
    match List.find_opt (fun (s : Plan.seg_plan) -> s.Plan.hi > s.Plan.lo) segments with
    | Some s -> s
    | None -> List.hd segments
  in
  (ops, seg)

let test_pipeline_lower_bound () =
  let ops, seg = segment_of (Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 512; 512 ] ()) in
  let makespan, events = Pipeline.simulate chip ops seg ~tiles:8 () in
  Alcotest.(check bool) "DES >= Eq. 9 approximation" true
    (makespan >= seg.Plan.intra_cycles -. 1e-9);
  (* with a single tile, a pure chain's makespan is the critical path: the
     sum of per-op latencies *)
  let makespan1, _ = Pipeline.simulate chip ops seg ~tiles:1 () in
  let sum =
    List.fold_left
      (fun acc (a : Plan.op_alloc) -> acc +. Alloc.op_latency chip ops.(a.Plan.uid) a)
      0. seg.Plan.allocs
  in
  Alcotest.(check bool)
    (Printf.sprintf "single tile ~ critical path (%g vs %g)" makespan1 sum)
    true
    (makespan1 <= sum +. 1e-6);
  (* events well-formed *)
  List.iter
    (fun (e : Pipeline.event) ->
      Alcotest.(check bool) "event ordered" true (e.Pipeline.t_finish >= e.Pipeline.t_start))
    events;
  Alcotest.(check int) "one event per (op, tile)"
    (8 * List.length seg.Plan.allocs)
    (List.length events)

let test_pipeline_more_tiles_less_makespan () =
  let ops, seg = segment_of (Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 512; 512 ] ()) in
  let m1, _ = Pipeline.simulate chip ops seg ~tiles:1 () in
  let m8, _ = Pipeline.simulate chip ops seg ~tiles:8 () in
  let m64, _ = Pipeline.simulate chip ops seg ~tiles:64 () in
  Alcotest.(check bool) "finer tiling pipelines better" true (m8 <= m1 +. 1e-9);
  Alcotest.(check bool) "and converges" true (m64 <= m8 +. 1e-9)

let test_pipeline_gantt () =
  let ops, seg = segment_of (Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 512; 512 ] ()) in
  let _, events = Pipeline.simulate chip ops seg ~tiles:4 () in
  let s = Pipeline.gantt events in
  Alcotest.(check bool) "gantt renders rows" true
    (String.length s > 0 && String.contains s '#');
  Alcotest.(check string) "empty gantt" "(empty)\n" (Pipeline.gantt [])

let test_pipeline_validation () =
  let ops, seg = segment_of (Cim_models.Mlp.build ~batch:1 ~dims:[ 64; 64 ] ()) in
  Alcotest.check_raises "bad tiles"
    (Invalid_argument "Pipeline.simulate: tiles must be positive") (fun () ->
      ignore (Pipeline.simulate chip ops seg ~tiles:0 ()))

(* --- greedy allocator --- *)

let test_greedy_feasible_and_dominated () =
  List.iter
    (fun g ->
      let ops = Opinfo.extract chip g in
      let hi = min 3 (Array.length ops - 1) in
      if Opinfo.total_min_arrays ops ~lo:0 ~hi <= chip.Chip.n_arrays then begin
        let gr = Option.get (Greedy.solve chip ops ~lo:0 ~hi) in
        (* feasibility *)
        Alcotest.(check bool) "greedy within capacity" true
          (Plan.arrays_used gr <= chip.Chip.n_arrays);
        List.iter
          (fun (a : Plan.op_alloc) ->
            Alcotest.(check bool) "greedy respects minima" true
              (a.Plan.com >= ops.(a.Plan.uid).Opinfo.min_compute_arrays))
          gr.Plan.allocs;
        (* the exact MIP never loses to the heuristic *)
        let mip = Option.get (Alloc.solve chip ops ~lo:0 ~hi) in
        Alcotest.(check bool)
          (Printf.sprintf "MIP (%g) <= greedy (%g)" mip.Plan.intra_cycles
             gr.Plan.intra_cycles)
          true
          (mip.Plan.intra_cycles <= gr.Plan.intra_cycles *. (1. +. 1e-6))
      end)
    [
      Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 256 ] ();
      Cim_models.Cnn.tiny_cnn ~batch:1 ();
    ]

let test_greedy_infeasible () =
  let g = (Option.get (Zoo.find "vgg16")).Zoo.build (Workload.prefill ~batch:1 1) in
  let ops = Opinfo.extract chip g in
  let n = Array.length ops in
  let rec find lo hi =
    if hi >= n then None
    else if Opinfo.total_min_arrays ops ~lo ~hi > chip.Chip.n_arrays then Some (lo, hi)
    else find lo (hi + 1)
  in
  match find 0 1 with
  | None -> Alcotest.fail "no oversized window"
  | Some (lo, hi) ->
    Alcotest.(check bool) "greedy rejects oversized" true
      (Greedy.solve chip ops ~lo ~hi = None)

(* --- chip spec --- *)

let test_spec_roundtrip () =
  List.iter
    (fun (_, c) ->
      let c2 = Spec.of_string (Spec.to_string c) in
      Alcotest.(check string) "name" c.Chip.name c2.Chip.name;
      Alcotest.(check int) "arrays" c.Chip.n_arrays c2.Chip.n_arrays;
      Alcotest.(check (float 0.)) "op_cim" c.Chip.op_cim c2.Chip.op_cim;
      Alcotest.(check string) "method" c.Chip.switch_method c2.Chip.switch_method)
    Config.presets

let test_spec_comments_and_errors () =
  let src =
    "# a comment\nchip \"X\" {\n  n_arrays = 4\n  grid_cols = 2\n  rows = 32\n\
     \  cols = 32\n  cell_bits = 1\n  weight_bits = 8\n  buffer_bytes = 1024\n\
     \  internal_bw = 8\n  extern_bw = 8\n  op_cim = 16\n  d_cim = 4\n\
     \  l_m2c = 1\n  l_c2m = 1\n  write_latency = 1\n\
     \  switch_method = \"driver\"  # trailing comment\n  freq_mhz = 100\n}\n"
  in
  let c = Spec.of_string src in
  Alcotest.(check int) "parsed arrays" 4 c.Chip.n_arrays;
  let bad s =
    match Spec.of_string s with
    | exception Spec.Parse_error _ -> ()
    | exception Chip.Invalid_config _ -> ()
    | _ -> Alcotest.failf "expected failure: %s" s
  in
  bad "chip \"X\" {\n}";
  bad "nonsense";
  bad (src ^ "\nn_arrays = 5")

(* --- new zoo models --- *)

let test_vit_compiles () =
  let e = Option.get (Zoo.find "vit-base") in
  let mc = Cmswitch.compile_model chip e (Workload.prefill ~batch:1 196) in
  Alcotest.(check bool) "positive latency" true (mc.Cmswitch.total_cycles > 0.);
  (* the whole ViT graph also shape-infers (patch embedding path) *)
  ignore (Cim_nnir.Shape_infer.infer (e.Zoo.build (Workload.prefill ~batch:2 196)))

let test_gpt2_decodes () =
  let e = Option.get (Zoo.find "gpt2-xl") in
  let cms = (Cmswitch.compile_model chip e (Workload.decode ~batch:1 64)).Cmswitch.total_cycles in
  let mlc =
    Cim_baselines.Baseline.compile_model Cim_baselines.Baseline.Cim_mlc chip e
      (Workload.decode ~batch:1 64)
  in
  Alcotest.(check bool) "CMSwitch wins on GPT-2 decode" true (cms <= mlc *. (1. +. 1e-9))

(* --- serving simulator --- *)

module Serving = Cim_sim.Serving

let test_interpolate () =
  let f = Serving.interpolate [ (0, 0.); (10, 100.) ] in
  Alcotest.(check (float 1e-9)) "midpoint" 50. (f 5);
  Alcotest.(check (float 1e-9)) "left extrapolation" 0. (f (-5));
  Alcotest.(check (float 1e-9)) "right extrapolation" 100. (f 20);
  Alcotest.(check (float 1e-9)) "exact sample" 100. (f 10);
  (* an empty sample list is the constant-zero profile, not an error *)
  Alcotest.(check (float 1e-9)) "empty" 0. (Serving.interpolate [] 0)

let test_serving_fcfs () =
  (* constant costs make the schedule analytic: prefill 10, decode 1 *)
  let profile =
    { Serving.prefill_cycles = (fun _ -> 10.); decode_cycles = (fun _ -> 1.) }
  in
  let trace =
    [ { Serving.arrival = 0.; prompt = 4; output = 5 };
      { Serving.arrival = 0.; prompt = 4; output = 5 } ]
  in
  let s = Serving.run profile trace in
  Alcotest.(check int) "completed" 2 s.Serving.completed;
  (* each request takes 15 cycles; FCFS back to back *)
  Alcotest.(check (float 1e-9)) "makespan" 30. s.Serving.makespan;
  Alcotest.(check (float 1e-9)) "mean latency" ((15. +. 30.) /. 2.) s.Serving.mean_latency;
  Alcotest.(check (float 1e-9)) "mean ttft" ((10. +. 25.) /. 2.) s.Serving.mean_ttft;
  Alcotest.(check int) "tokens" 12 s.Serving.tokens

let test_serving_idle_gap () =
  let profile =
    { Serving.prefill_cycles = (fun _ -> 10.); decode_cycles = (fun _ -> 0.) }
  in
  let trace =
    [ { Serving.arrival = 0.; prompt = 1; output = 0 };
      { Serving.arrival = 100.; prompt = 1; output = 0 } ]
  in
  let s = Serving.run profile trace in
  (* second request starts at its arrival, not at the first one's finish *)
  Alcotest.(check (float 1e-9)) "idle respected" 110. s.Serving.makespan;
  Alcotest.(check (float 1e-9)) "latencies unqueued" 10. s.Serving.mean_latency

let test_serving_config_record () =
  let profile =
    { Serving.prefill_cycles = (fun _ -> 10.); decode_cycles = (fun _ -> 1.) }
  in
  let trace =
    [ { Serving.arrival = 0.; prompt = 4; output = 5 };
      { Serving.arrival = 0.; prompt = 4; output = 5 } ]
  in
  (* default_config = no deadline: identical to the bare run *)
  let bare = Serving.run profile trace in
  let dflt = Serving.run ~config:Serving.default_config profile trace in
  Alcotest.(check bool) "default config = no config" true (bare = dflt);
  (* config deadline drops the queued request (latency 30 > 20) *)
  let tight = Serving.run ~config:{ Serving.deadline = Some 20. } profile trace in
  Alcotest.(check int) "config deadline admits first" 1 tight.Serving.completed;
  Alcotest.(check int) "config deadline drops second" 1 tight.Serving.dropped;
  (* the legacy ?deadline argument overrides the config record *)
  let relaxed =
    Serving.run ~config:{ Serving.deadline = Some 20. } ~deadline:1000. profile
      trace
  in
  Alcotest.(check int) "?deadline wins over config" 2 relaxed.Serving.completed

(* The nearest-rank percentile must use exact rank arithmetic: with the
   naive (p /. 100.) *. n form, 0.95 * 20 evaluates to 19.000000000000004,
   ceil inflates the rank, and p95 on a 20-request trace silently returns
   the maximum instead of the 19th order statistic. Pin the 19/20/21
   boundary, where ceil(0.95 n) crosses a whole number. *)
let test_p95_nearest_rank_boundary () =
  let latencies n = List.init n (fun i -> float_of_int (i + 1)) in
  let p95 n = Cim_util.Stats.percentile_nearest_rank 95. (latencies n) in
  (* n = 19: ceil(18.05) = 19 -> the maximum *)
  Alcotest.(check (float 0.)) "n=19 -> rank 19 (max)" 19. (p95 19);
  (* n = 20: 0.95 * 20 = 19 exactly -> rank 19, NOT the maximum *)
  Alcotest.(check (float 0.)) "n=20 -> rank 19" 19. (p95 20);
  (* n = 21: ceil(19.95) = 20 *)
  Alcotest.(check (float 0.)) "n=21 -> rank 20" 20. (p95 21)

let prop_p95_nearest_rank =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"p95 nearest-rank = ceil(0.95 n)-th order stat"
       ~count:200
       QCheck.(int_range 1 200)
       (fun n ->
         (* sorted 1..n makes the expected order statistic explicit; the
            exact rank is ceil(95 n / 100) computed in integers *)
         let rank = ((95 * n) + 99) / 100 in
         Cim_util.Stats.percentile_nearest_rank 95.
           (List.init n (fun i -> float_of_int (i + 1)))
         = float_of_int rank))

let test_poisson_trace () =
  let rng = Cim_util.Rng.create 5 in
  let trace = Serving.poisson_trace rng ~n:50 ~mean_gap:100. ~prompt:8 ~output:4 in
  Alcotest.(check int) "count" 50 (List.length trace);
  let arrivals = List.map (fun (r : Serving.request) -> r.Serving.arrival) trace in
  let sorted = List.sort compare arrivals in
  Alcotest.(check bool) "monotone arrivals" true (arrivals = sorted);
  let last = List.nth arrivals 49 in
  Alcotest.(check bool) "mean gap plausible" true (last > 1000. && last < 20000.)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "serving interpolation" `Quick test_interpolate;
      Alcotest.test_case "serving FCFS accounting" `Quick test_serving_fcfs;
      Alcotest.test_case "serving idle gaps" `Quick test_serving_idle_gap;
      Alcotest.test_case "poisson trace" `Quick test_poisson_trace;
      Alcotest.test_case "serving config record" `Quick test_serving_config_record;
      Alcotest.test_case "p95 nearest-rank boundary" `Quick
        test_p95_nearest_rank_boundary;
      prop_p95_nearest_rank;
      Alcotest.test_case "energy profiles" `Quick test_energy_profiles;
      Alcotest.test_case "energy accounting" `Quick test_energy_sim_accounting;
      Alcotest.test_case "energy empty program" `Quick test_energy_empty_program;
      Alcotest.test_case "pipeline DES bounds" `Quick test_pipeline_lower_bound;
      Alcotest.test_case "pipeline tiling monotone" `Quick test_pipeline_more_tiles_less_makespan;
      Alcotest.test_case "pipeline gantt" `Quick test_pipeline_gantt;
      Alcotest.test_case "pipeline validation" `Quick test_pipeline_validation;
      Alcotest.test_case "greedy feasible, MIP dominates" `Quick test_greedy_feasible_and_dominated;
      Alcotest.test_case "greedy rejects oversized" `Quick test_greedy_infeasible;
      Alcotest.test_case "chip spec round-trip" `Quick test_spec_roundtrip;
      Alcotest.test_case "chip spec comments/errors" `Quick test_spec_comments_and_errors;
      Alcotest.test_case "ViT compiles" `Slow test_vit_compiles;
      Alcotest.test_case "GPT-2 decode wins" `Slow test_gpt2_decodes;
    ] )
