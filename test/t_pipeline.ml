(* The nanopass pass manager and the lowered MMIO command-stream backend:
   pipeline-as-data equivalence with the driver, per-pass validators naming
   the failing pass (including a functional-sim validator closure), pass-list
   parsing and cache-key fingerprints, ISA encode/decode round trips (QCheck
   and compiled programs), decoder robustness, and the machine-level ISA
   simulator differentially tested against the meta-op functional simulator
   on resnet18 and a bert-large block at jobs 1 and 4. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Mode = Cim_arch.Mode
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Graph = Cim_nnir.Graph
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Rng = Cim_util.Rng
module Store = Cim_cache.Store
module Cmswitch = Cim_compiler.Cmswitch
module Cfg = Cim_compiler.Cmswitch.Config
module Passes = Cim_compiler.Passes
module Ccache = Cim_compiler.Ccache
module Plan = Cim_compiler.Plan
module Flow = Cim_metaop.Flow
module Isa = Cim_metaop.Isa
module Functional = Cim_sim.Functional
module Isa_sim = Cim_sim.Isa_sim

let chip = Config.dynaplasia

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let graph_of key =
  let e = Option.get (Zoo.find key) in
  match e.Zoo.family with
  | Zoo.Cnn -> e.Zoo.build (Workload.prefill ~batch:1 1)
  | _ -> (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 16)

(* a bare environment for driving pipelines by hand, no Cmswitch in sight *)
let env_of ?on_stage () =
  Passes.make_env ?on_stage ~partition_fraction:0.5
    ~seg_options:(Cfg.to_segment_options Cfg.default)
    chip

(* ---- pipeline-as-data equivalence ----------------------------------------- *)

(* driving the default pass list by hand produces the same program bytes as
   the Cmswitch.compile driver — the pipeline really is just data *)
let test_manual_pipeline_equiv () =
  let g = graph_of "resnet18" in
  let r = Cmswitch.compile chip g in
  let st =
    Passes.run_pipeline Passes.default_pipeline
      (Passes.init (env_of ()) g)
  in
  Alcotest.(check string) "same program bytes"
    (Flow.to_string r.Cmswitch.program)
    (Flow.to_string (Passes.program_exn st));
  Alcotest.(check (list string)) "clean diagnostics" []
    (Passes.diagnostics_exn st)

(* a mis-ordered pipeline fails naming the missing artifact's producer *)
let test_misordered_pipeline () =
  let g = graph_of "bert-large" in
  match
    Passes.run_pipeline [ Passes.p_place ] (Passes.init (env_of ()) g)
  with
  | _ -> Alcotest.fail "place without segment should fail"
  | exception Failure m ->
    Alcotest.(check bool) ("names the producing pass: " ^ m) true
      (contains m "segment")

(* ---- per-pass validators (the nanopass discipline) ------------------------ *)

(* a deliberately-broken pass: clobbers the schedule total; its own
   validator (reused from p_schedule) must catch it and name it *)
let test_broken_pass_named () =
  let g = graph_of "bert-large" in
  let clobber =
    {
      Passes.name = "clobber_schedule";
      describe = "deliberately break the schedule total";
      run =
        (fun st ->
          let sched = Passes.schedule_exn st in
          { st with
            Passes.schedule =
              Some { sched with Plan.total_cycles = Float.nan } });
      validate = Passes.p_schedule.Passes.validate;
    }
  in
  let pipeline =
    [ Passes.p_extract; Passes.p_segment; Passes.p_place; Passes.p_schedule;
      clobber; Passes.p_codegen; Passes.p_check ]
  in
  let st0 = Passes.init (env_of ()) g in
  (* validators off: the broken state sails through to codegen *)
  (match Passes.run_pipeline pipeline st0 with
  | _ -> ()
  | exception Passes.Pass_error _ ->
    Alcotest.fail "validators must not run without validate_each");
  match Passes.run_pipeline ~validate_each:true pipeline st0 with
  | _ -> Alcotest.fail "broken pass not caught"
  | exception Passes.Pass_error { pass; reason = _ } ->
    Alcotest.(check string) "failing pass named" "clobber_schedule" pass

(* corrupt codegen output (drop the leading mode switch): the check pass's
   validator rejects the program, naming "check" *)
let test_check_validator_catches_corruption () =
  let g = graph_of "bert-large" in
  let corrupt =
    {
      Passes.name = "drop_first_switch";
      describe = "deliberately drop the program's first mode switch";
      run =
        (fun st ->
          let p = Passes.program_exn st in
          let dropped = ref false in
          let instrs =
            List.filter
              (function
                | Flow.Switch _ when not !dropped ->
                  dropped := true;
                  false
                | _ -> true)
              p.Flow.instrs
          in
          if not !dropped then Alcotest.fail "program has no Switch to drop";
          { st with Passes.program = Some { p with Flow.instrs } });
      validate = None;
    }
  in
  let pipeline =
    [ Passes.p_extract; Passes.p_segment; Passes.p_place; Passes.p_schedule;
      Passes.p_codegen; corrupt; Passes.p_check ]
  in
  match
    Passes.run_pipeline ~validate_each:true pipeline
      (Passes.init (env_of ()) g)
  with
  | _ -> Alcotest.fail "corrupted program not caught"
  | exception Passes.Pass_error { pass; reason } ->
    Alcotest.(check string) "check pass named" "check" pass;
    Alcotest.(check bool) ("reason mentions the validator: " ^ reason) true
      (String.length reason > 0)

(* heavyweight oracle substitution: a codegen validator that actually runs
   the functional simulator on the emitted program *)
let test_functional_sim_validator () =
  let g = graph_of "bert-large" in
  let rng = Rng.create 7 in
  let g' = Graph.with_random_values rng g in
  let inputs =
    List.map
      (fun (n, shape) -> (n, Tensor.rand rng shape ~lo:(-1.) ~hi:1.))
      g'.Graph.graph_inputs
  in
  let sim_validate (st : Passes.state) =
    match
      Functional.run chip ~jobs:1 g' (Passes.program_exn st) ~inputs
    with
    | (_ : Functional.report) -> Ok ()
    | exception Functional.Error m -> Error ("functional sim rejected: " ^ m)
  in
  let codegen_sim =
    { Passes.p_codegen with Passes.validate = Some sim_validate }
  in
  let good =
    [ Passes.p_extract; Passes.p_segment; Passes.p_place; Passes.p_schedule;
      codegen_sim; Passes.p_check ]
  in
  ignore
    (Passes.run_pipeline ~validate_each:true good
       (Passes.init (env_of ()) g'));
  (* now stack the corruption on top: the simulator-backed validator fires *)
  let corrupt =
    {
      codegen_sim with
      Passes.name = "codegen_then_corrupt";
      run =
        (fun st ->
          let st = Passes.p_codegen.Passes.run st in
          let p = Passes.program_exn st in
          { st with
            Passes.program =
              Some { p with Flow.instrs = List.tl p.Flow.instrs } });
    }
  in
  let bad =
    [ Passes.p_extract; Passes.p_segment; Passes.p_place; Passes.p_schedule;
      corrupt; Passes.p_check ]
  in
  match
    Passes.run_pipeline ~validate_each:true bad (Passes.init (env_of ()) g')
  with
  | _ -> Alcotest.fail "sim validator did not catch the corrupted program"
  | exception Passes.Pass_error { pass; _ } ->
    Alcotest.(check string) "corrupting pass named" "codegen_then_corrupt" pass

(* ---- pass-list parsing and fingerprints ----------------------------------- *)

let names ps = List.map (fun p -> p.Passes.name) ps

let test_parse_list () =
  (match Passes.parse_list "default" with
  | Ok ps ->
    Alcotest.(check (list string)) "default token"
      (names Passes.default_pipeline) (names ps)
  | Error m -> Alcotest.fail m);
  (match Passes.parse_list "default, lower_isa" with
  | Ok ps ->
    Alcotest.(check (list string)) "default + lower_isa"
      (names Passes.default_pipeline @ [ "lower_isa" ])
      (names ps)
  | Error m -> Alcotest.fail m);
  (match Passes.parse_list "serial" with
  | Ok ps ->
    Alcotest.(check (list string)) "serial token"
      (names Passes.serial_pipeline) (names ps)
  | Error m -> Alcotest.fail m);
  (match Passes.parse_list "extract,segment,codegen" with
  | Ok ps ->
    Alcotest.(check (list string)) "explicit names"
      [ "extract"; "segment"; "codegen" ] (names ps)
  | Error m -> Alcotest.fail m);
  (match Passes.parse_list "extract,bogus" with
  | Ok _ -> Alcotest.fail "unknown pass accepted"
  | Error m ->
    Alcotest.(check bool) ("error names the pass: " ^ m) true
      (contains m "bogus"));
  match Passes.parse_list " " with
  | Ok _ -> Alcotest.fail "empty list accepted"
  | Error _ -> ()

let test_fingerprint () =
  Alcotest.(check string) "default fingerprint"
    "passes.v1[extract;segment;place;schedule;probe;codegen;check]"
    Passes.default_fingerprint;
  Alcotest.(check string) "fingerprint follows the list"
    "passes.v1[extract;codegen]"
    (Passes.fingerprint [ Passes.p_extract; Passes.p_codegen ]);
  (* the fingerprint is a prog-key line: distinct pipelines, distinct keys *)
  let key passes =
    Ccache.prog_key ~graph_text:"g" ~chip ~faults:None ~config:"c"
      ~passes:(Passes.fingerprint passes) ()
  in
  Alcotest.(check bool) "key embeds the fingerprint" true
    (contains
       (key Passes.default_pipeline)
       Passes.default_fingerprint);
  Alcotest.(check bool) "pipelines key separately" true
    (key Passes.default_pipeline <> key Passes.serial_pipeline)

(* the program tier never replays across pipelines: a custom pass list is a
   cache miss even when the same store already holds the default's program *)
let test_cache_pass_isolation () =
  let store = Store.open_dir (Filename.temp_dir "cmswitch-pipeline" "") in
  let cfg = Cfg.with_cache (Some store) Cfg.default in
  let g = graph_of "bert-large" in
  let r1 = Cmswitch.compile ~config:cfg chip g in
  let r2 = Cmswitch.compile ~config:cfg chip g in
  let c = Store.tier_counters store Ccache.prog_tier in
  Alcotest.(check int) "warm default compile hits" 1 c.Store.hits;
  Alcotest.(check string) "hit replays byte-identically"
    (Flow.to_string r1.Cmswitch.program)
    (Flow.to_string r2.Cmswitch.program);
  let custom =
    match Passes.parse_list "default,lower_isa" with
    | Ok ps -> ps
    | Error m -> Alcotest.fail m
  in
  let r3 = Cmswitch.compile ~config:cfg ~passes:custom chip g in
  let c' = Store.tier_counters store Ccache.prog_tier in
  Alcotest.(check int) "custom pipeline cannot replay the default's entry" 1
    c'.Store.hits;
  Alcotest.(check bool) "custom pipeline missed" true
    (c'.Store.misses > c.Store.misses);
  Alcotest.(check string) "same program out of either pipeline"
    (Flow.to_string r1.Cmswitch.program)
    (Flow.to_string r3.Cmswitch.program)

(* ---- ISA encode / decode -------------------------------------------------- *)

let gen_coord =
  QCheck.Gen.(map2 (fun x y -> { Chip.x; y }) (int_range 0 300) (int_range 0 300))

let gen_name = QCheck.Gen.(oneofl [ ""; "x"; "attn_qkv"; "t"; "a b"; "出力" ])

let gen_location =
  QCheck.Gen.(
    frequency
      [ (2, return Flow.Main_memory);
        (2, return Flow.Buffer);
        (1, map (fun cs -> Flow.Mem_arrays cs) (list_size (int_range 0 4) gen_coord)) ])

let gen_bytes =
  (* spans the 32-bit boundary so the i64 split is exercised *)
  QCheck.Gen.(
    oneof
      [ int_range 0 100_000;
        map (fun k -> (1 lsl 33) + k) (int_range 0 1_000_000) ])

let gen_float =
  QCheck.Gen.(
    map2 (fun m e -> float_of_int m *. (2. ** float_of_int e))
      (int_range (-1000000) 1000000) (int_range (-20) 40))

let gen_cmd =
  QCheck.Gen.(
    frequency
      [ ( 2,
          map2
            (fun t arrays -> Isa.Switch { target = t; arrays })
            (oneofl [ Mode.To_compute; Mode.To_memory ])
            (list_size (int_range 1 5) gen_coord) );
        ( 2,
          map
            (fun (((label, node_id), (arrays, (lo, w))), (bytes, in_place)) ->
              Isa.Write_weights
                { label; node_id; arrays; slice = { Flow.lo; hi = lo + w };
                  bytes; in_place })
            (pair
               (pair (pair gen_name (int_range (-3) 100000))
                  (pair (list_size (int_range 1 4) gen_coord)
                     (pair (int_range 0 5000) (int_range 1 5000))))
               (pair gen_bytes bool)) );
        ( 2,
          map
            (fun (tensor, (src, (dst, bytes))) ->
              Isa.Dma_load { tensor; src; dst; bytes })
            (pair gen_name (pair gen_location (pair gen_location gen_bytes))) );
        ( 2,
          map
            (fun (tensor, (src, (dst, bytes))) ->
              Isa.Dma_store { tensor; src; dst; bytes })
            (pair gen_name (pair gen_location (pair gen_location gen_bytes))) );
        ( 3,
          map
            (fun (((label, node_id), (arrays, mem_arrays)),
                  ((inputs, output), ((lo, w), (macs, ai)))) ->
              Isa.Compute
                { label; node_id; arrays; mem_arrays; inputs; output;
                  slice = { Flow.lo; hi = lo + w }; macs; ai })
            (pair
               (pair (pair gen_name (int_range (-3) 100000))
                  (pair (list_size (int_range 1 4) gen_coord)
                     (list_size (int_range 0 3) gen_coord)))
               (pair
                  (pair (list_size (int_range 0 3) gen_name) gen_name)
                  (pair (pair (int_range 0 5000) (int_range 1 5000))
                     (pair gen_float gen_float)))) );
        ( 2,
          map
            (fun ((label, node_id), (inputs, output)) ->
              Isa.Vec { label; node_id; inputs; output })
            (pair (pair gen_name (int_range (-3) 100000))
               (pair (list_size (int_range 0 4) gen_name) gen_name)) );
        (1, map (fun n -> Isa.Par_begin n) (int_range 0 40));
        (1, return Isa.Par_end) ])

let gen_image =
  QCheck.Gen.(
    map2
      (fun source cmds -> { Isa.source; cmds = Array.of_list cmds })
      gen_name
      (list_size (int_range 0 24) gen_cmd))

let prop_encode_decode =
  QCheck.Test.make ~name:"decode . encode = id on random images" ~count:300
    (QCheck.make gen_image)
    (fun img -> Isa.decode (Isa.encode img) = Ok img)

let test_compiled_round_trips () =
  List.iter
    (fun key ->
      let g = graph_of key in
      let r = Cmswitch.compile chip g in
      let img = Isa.of_flow r.Cmswitch.program in
      Alcotest.(check string) (key ^ ": to_flow . of_flow = id")
        (Flow.to_string r.Cmswitch.program)
        (Flow.to_string (Isa.to_flow img));
      (match Isa.decode (Isa.encode img) with
      | Ok img' ->
        Alcotest.(check bool) (key ^ ": decode . encode = id") true (img' = img)
      | Error m -> Alcotest.failf "%s: decode failed: %s" key m);
      Alcotest.(check bool) (key ^ ": non-trivial stream") true
        (Isa.cmd_count img > 0 && Isa.word_count img > Isa.cmd_count img))
    [ "resnet18"; "bert-large" ]

let test_decoder_robustness () =
  let reject what s =
    match Isa.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decoder accepted %s" what
  in
  reject "empty input" "";
  reject "bad magic" "XXXX\x01\x00\x00\x00";
  reject "truncated header" "CMSI\x01";
  let g = graph_of "bert-large" in
  let r = Cmswitch.compile chip g in
  let bytes = Isa.encode (Isa.of_flow r.Cmswitch.program) in
  (* every proper prefix must be an Error, never an exception *)
  List.iter
    (fun frac ->
      let n = String.length bytes * frac / 100 in
      reject
        (Printf.sprintf "truncation at %d%%" frac)
        (String.sub bytes 0 n))
    [ 10; 50; 99 ];
  (* unknown opcode: corrupt the version word *)
  let b = Bytes.of_string bytes in
  Bytes.set b 4 '\xff';
  reject "bad version" (Bytes.to_string b)

let test_bracket_validation () =
  (match Isa.to_flow { Isa.source = "x"; cmds = [| Isa.Par_end |] } with
  | _ -> Alcotest.fail "stray PAR_END accepted"
  | exception Invalid_argument _ -> ());
  (match Isa.to_flow { Isa.source = "x"; cmds = [| Isa.Par_begin 1 |] } with
  | _ -> Alcotest.fail "unterminated PAR_BEGIN accepted"
  | exception Invalid_argument _ -> ());
  let nested =
    { Flow.source = "n";
      instrs = [ Flow.Parallel [ Flow.Parallel [] ] ] }
  in
  match Isa.of_flow nested with
  | _ -> Alcotest.fail "nested Parallel accepted"
  | exception Invalid_argument _ -> ()

(* ---- machine-level simulator vs the meta-op functional simulator ---------- *)

(* the differential contract of the second backend: the flat command-stream
   interpreter produces the same digest (outputs + instruction and switch
   counters) as the tree-walking meta-op simulator, at jobs 1 and 4 *)
let test_machine_differential key () =
  let g = graph_of key in
  let r = Cmswitch.compile chip g in
  let rng = Rng.create 42 in
  let g' = Graph.with_random_values rng g in
  let inputs =
    List.map
      (fun (n, shape) -> (n, Tensor.rand rng shape ~lo:(-1.) ~hi:1.))
      g'.Graph.graph_inputs
  in
  let img = Isa.of_flow r.Cmswitch.program in
  let reference =
    Functional.digest (Functional.run chip ~jobs:1 g' r.Cmswitch.program ~inputs)
  in
  let isa_d jobs =
    Functional.digest (Isa_sim.run chip ~jobs g' img ~inputs)
  in
  Alcotest.(check string) (key ^ ": machine sim = functional sim (jobs=1)")
    reference (isa_d 1);
  Alcotest.(check string) (key ^ ": machine sim = functional sim (jobs=4)")
    reference (isa_d 4)

(* the machine sim inherits the fault model: a stream that computes on an
   array the program never switched must be rejected *)
let test_machine_rejects_corrupt_stream () =
  let g = graph_of "bert-large" in
  let r = Cmswitch.compile chip g in
  let rng = Rng.create 42 in
  let g' = Graph.with_random_values rng g in
  let inputs =
    List.map
      (fun (n, shape) -> (n, Tensor.rand rng shape ~lo:(-1.) ~hi:1.))
      g'.Graph.graph_inputs
  in
  let img = Isa.of_flow r.Cmswitch.program in
  (* drop the leading SWITCH command: every compute now runs on arrays in
     the wrong mode, which the static raise-and-validate step or the
     machine model must reject *)
  let corrupt =
    { img with Isa.cmds = Array.sub img.Isa.cmds 1 (Array.length img.Isa.cmds - 1) }
  in
  match Isa_sim.run chip ~jobs:1 g' corrupt ~inputs with
  | _ -> Alcotest.fail "corrupt command stream accepted"
  | exception Functional.Error _ -> ()
  | exception Cim_sim.Machine.Fault _ -> ()

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "manual default pipeline = compile driver" `Quick
        test_manual_pipeline_equiv;
      Alcotest.test_case "mis-ordered pipeline names the producer" `Quick
        test_misordered_pipeline;
      Alcotest.test_case "broken pass caught and named" `Quick
        test_broken_pass_named;
      Alcotest.test_case "check validator catches corrupt codegen" `Quick
        test_check_validator_catches_corruption;
      Alcotest.test_case "functional sim as a pass validator" `Quick
        test_functional_sim_validator;
      Alcotest.test_case "parse_list" `Quick test_parse_list;
      Alcotest.test_case "pass fingerprints and prog keys" `Quick
        test_fingerprint;
      Alcotest.test_case "cache isolation across pipelines" `Quick
        test_cache_pass_isolation;
      qtest prop_encode_decode;
      Alcotest.test_case "compiled programs round trip" `Quick
        test_compiled_round_trips;
      Alcotest.test_case "decoder robustness" `Quick test_decoder_robustness;
      Alcotest.test_case "bracket validation" `Quick test_bracket_validation;
      Alcotest.test_case "machine sim = functional sim: resnet18" `Quick
        (test_machine_differential "resnet18");
      Alcotest.test_case "machine sim = functional sim: bert-large block"
        `Quick
        (test_machine_differential "bert-large");
      Alcotest.test_case "machine sim rejects corrupt streams" `Quick
        test_machine_rejects_corrupt_stream;
    ] )
