(* Dynamic-shape fast path: the bucket policy, bucket-aware cache keys,
   the incremental (DP-prefix + in-session memo) compilation session, and
   the serving-side per-token statistics. The load-bearing claims:

   - lengths map to bucket ceilings exactly at/below/above each boundary,
     and beyond the last boundary compilation falls back to the exact length
   - every length inside a bucket shares one cached program; adjacent
     buckets NEVER collide (distinct prog-tier keys)
   - a warm bucketed compile re-solves zero MILPs (the B&B solver is never
     entered)
   - the frontier-seeded incremental session produces byte-identical
     programs to full recompilation, at any job count *)

module Cmswitch = Cim_compiler.Cmswitch
module Cfg = Cim_compiler.Cmswitch.Config
module Bucket = Cim_compiler.Bucket
module Ccache = Cim_compiler.Ccache
module Shape_infer = Cim_nnir.Shape_infer
module Store = Cim_cache.Store
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Transformer = Cim_models.Transformer
module Serving = Cim_sim.Serving
module Metrics = Cim_obs.Metrics
module Flow = Cim_metaop.Flow

let chip = Cim_arch.Config.dynaplasia

(* a 2-block decoder small enough to compile in milliseconds *)
let tiny_cfg =
  { Transformer.model_name = "TinyDecoder"; n_layers = 2; d_model = 64;
    n_heads = 2; d_ffn = 128; vocab = 128; norm = Transformer.Layernorm;
    act = Transformer.Gelu_act; causal = true }

let tiny_entry =
  { Zoo.key = "tiny-decoder"; display = "TinyDecoder";
    family = Zoo.Decoder_only;
    build = (fun w -> Transformer.build tiny_cfg w);
    layer = Some (fun w -> Transformer.build_layer tiny_cfg w ~layer_index:0);
    n_layers = tiny_cfg.Transformer.n_layers;
    params = Transformer.param_count tiny_cfg }

let md5_of_mc (mc : Cmswitch.model_cost) =
  let part = function
    | None -> ""
    | Some (r : Cmswitch.result) -> Flow.to_string r.Cmswitch.program
  in
  Digest.to_hex
    (Digest.string
       (part mc.Cmswitch.layer ^ part mc.Cmswitch.whole ^ part mc.Cmswitch.head))

let with_temp_store f =
  let dir = Filename.temp_dir "cmswitch-test-dynshape" "" in
  let s = Store.open_dir dir in
  Fun.protect ~finally:(fun () -> ignore (Store.clear s)) (fun () -> f s)

(* ---- bucket policy ------------------------------------------------------- *)

let test_pow2_boundaries () =
  let b = Bucket.default in
  (* pow2, ceilings 32..2048 *)
  let cases =
    [ (1, 32); (31, 32); (32, 32); (33, 64); (63, 64); (64, 64); (65, 128);
      (127, 128); (128, 128); (129, 256); (2047, 2048); (2048, 2048);
      (* beyond the last ceiling: exact-length compilation, no padding *)
      (2049, 2049); (4096, 4096) ]
  in
  List.iter
    (fun (len, want) ->
      Alcotest.(check int)
        (Printf.sprintf "pow2 ceiling of %d" len)
        want (Bucket.ceiling b len))
    cases;
  let b16 = Bucket.pow2 ~min_ceiling:16 ~max_ceiling:64 () in
  List.iter
    (fun (len, want) ->
      Alcotest.(check int)
        (Printf.sprintf "pow2:16:64 ceiling of %d" len)
        want (Bucket.ceiling b16 len))
    [ (1, 16); (16, 16); (17, 32); (64, 64); (65, 65) ]

let test_explicit_boundaries () =
  let b = Bucket.explicit [ 128; 32; 64 ] (* sorted + deduped internally *) in
  Alcotest.(check (list int)) "boundaries sorted" [ 32; 64; 128 ]
    (Bucket.boundaries b);
  List.iter
    (fun (len, want) ->
      Alcotest.(check int)
        (Printf.sprintf "explicit ceiling of %d" len)
        want (Bucket.ceiling b len))
    [ (1, 32); (32, 32); (33, 64); (64, 64); (65, 128); (128, 128); (129, 129) ];
  Alcotest.check_raises "empty boundary list rejected"
    (Invalid_argument "Bucket.explicit: empty boundary list") (fun () ->
      ignore (Bucket.explicit []));
  (* ceilings never shrink a length: the padding-soundness precondition *)
  List.iter
    (fun b ->
      for len = 1 to 300 do
        if Bucket.ceiling b len < len then
          Alcotest.failf "ceiling %d < length %d" (Bucket.ceiling b len) len
      done)
    [ Bucket.default; b; Bucket.pow2 ~min_ceiling:48 ~max_ceiling:50 () ]

let test_policy_round_trips () =
  List.iter
    (fun b ->
      (match Bucket.of_canonical (Bucket.canonical b) with
      | Ok b' ->
        Alcotest.(check bool)
          ("canonical round trip of " ^ Bucket.canonical b)
          true (Bucket.equal b b')
      | Error e -> Alcotest.failf "of_canonical rejected its own output: %s" e);
      match Bucket.of_string (Bucket.to_string b) with
      | Ok b' ->
        Alcotest.(check bool)
          ("of_string round trip of " ^ Bucket.to_string b)
          true (Bucket.equal b b')
      | Error e -> Alcotest.failf "of_string rejected its own output: %s" e)
    [ Bucket.default; Bucket.pow2 ~min_ceiling:16 ~max_ceiling:4096 ();
      Bucket.explicit [ 7 ]; Bucket.explicit [ 32; 64; 512 ] ];
  List.iter
    (fun s ->
      match Bucket.of_string s with
      | Ok _ -> Alcotest.failf "of_string accepted %S" s
      | Error _ -> ())
    [ ""; "pow2:0"; "pow2:64:32"; "0,4"; "abc"; "32,"; "pow2:1:2:3:4" ]

(* ---- bucket-aware cache keys --------------------------------------------- *)

let test_bucket_cache_sharing_and_isolation () =
  with_temp_store @@ fun store ->
  let cfg =
    Cfg.(
      default |> with_jobs 1 |> with_cache (Some store)
      |> with_buckets (Some Bucket.default))
  in
  let compile kv =
    Cmswitch.compile_model ~config:cfg chip tiny_entry (Workload.decode ~batch:1 kv)
  in
  let prog () = Store.tier_counters store Ccache.prog_tier in
  (* kv=20 -> context 21 -> ceiling 32: cold *)
  let a = compile 20 in
  let c0 = prog () in
  Alcotest.(check int) "first compile misses" 0 c0.Store.hits;
  (* kv=25 -> context 26 -> same ceiling 32: must hit, byte-identical *)
  let b = compile 25 in
  let c1 = prog () in
  Alcotest.(check bool) "same bucket hits the prog tier" true
    (c1.Store.hits > c0.Store.hits);
  Alcotest.(check int) "same bucket adds no misses" c0.Store.misses c1.Store.misses;
  Alcotest.(check string) "same bucket replays identical program" (md5_of_mc a)
    (md5_of_mc b);
  Alcotest.(check int) "requested workload is preserved" 25
    (match b.Cmswitch.workload.Workload.phase with
    | Workload.Decode { kv_len } -> kv_len
    | _ -> -1);
  (* kv=31 -> context 32 -> ceiling 32 still; kv=32 -> context 33 -> ceiling
     64: the adjacent bucket must NOT collide with the cached 32-program *)
  let _ = compile 31 in
  let c2 = prog () in
  let d = compile 32 in
  let c3 = prog () in
  Alcotest.(check bool) "adjacent bucket misses (no key collision)" true
    (c3.Store.misses > c2.Store.misses);
  Alcotest.(check bool) "adjacent bucket compiles a different program" true
    (md5_of_mc d <> md5_of_mc a);
  Alcotest.(check (option int)) "adjacent bucket ceiling" (Some 64)
    d.Cmswitch.bucket_ceiling

let test_warm_bucketed_resolves_zero_milps () =
  with_temp_store @@ fun store ->
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was) @@ fun () ->
  let cfg =
    Cfg.(
      default |> with_jobs 1 |> with_cache (Some store)
      |> with_buckets (Some Bucket.default))
  in
  let compile kv =
    Cmswitch.compile_model ~config:cfg chip tiny_entry (Workload.decode ~batch:1 kv)
  in
  let cold = compile 40 in
  let bb = Metrics.counter "solver.bb.nodes" in
  let before = Metrics.counter_value bb in
  (* warm: same bucket (context 41..64 -> ceiling 64) from a fresh handle,
     as a new process would open the directory *)
  let store' = Store.open_dir (Store.dir store) in
  let cfg' = Cfg.with_cache (Some store') cfg in
  let warm =
    Cmswitch.compile_model ~config:cfg' chip tiny_entry (Workload.decode ~batch:1 50)
  in
  Alcotest.(check (float 0.)) "warm bucketed compile never enters the solver"
    before (Metrics.counter_value bb);
  Alcotest.(check string) "warm program byte-identical" (md5_of_mc cold)
    (md5_of_mc warm)

(* ---- incremental session ------------------------------------------------- *)

let test_session_memo_and_crossings () =
  let cfg =
    Cfg.(
      default |> with_jobs 1
      |> with_buckets (Some (Bucket.pow2 ~min_ceiling:16 ~max_ceiling:64 ())))
  in
  let s = Cmswitch.session ~config:cfg chip tiny_entry in
  let step kv = Cmswitch.session_step s (Workload.decode ~batch:1 kv) in
  let a = step 10 in
  (* context 11 -> ceiling 16 *)
  Alcotest.(check int) "first step ceiling" 16 a.Cmswitch.step_ceiling;
  Alcotest.(check bool) "first step compiles" true a.Cmswitch.step_recompiled;
  let b = step 12 in
  Alcotest.(check bool) "bucket-interior step is a memo hit" false
    b.Cmswitch.step_recompiled;
  Alcotest.(check int) "memo hit keeps the ceiling" 16 b.Cmswitch.step_ceiling;
  let c = step 16 in
  (* context 17 crosses to ceiling 32 *)
  Alcotest.(check bool) "bucket crossing recompiles" true
    c.Cmswitch.step_recompiled;
  Alcotest.(check int) "crossing ceiling" 32 c.Cmswitch.step_ceiling;
  Alcotest.(check bool) "crossing seeds the DP from the previous frontier"
    true
    (c.Cmswitch.step_prefix_reused > 0);
  let d = step 20 in
  Alcotest.(check bool) "after crossing, interior steps memo-hit again" false
    d.Cmswitch.step_recompiled;
  (* prefill and decode at the same ceiling are distinct memo entries *)
  let p = Cmswitch.session_step s (Workload.prefill ~batch:1 30) in
  Alcotest.(check bool) "prefill at a cached decode ceiling still compiles"
    true p.Cmswitch.step_recompiled

let test_incremental_differential () =
  (* the frontier-seeded session must be byte-identical to full
     recompilation at every length, at any job count *)
  List.iter
    (fun jobs ->
      let cfg =
        Cfg.(
          default |> with_jobs jobs |> with_buckets (Some Bucket.default))
      in
      let s = Cmswitch.session ~config:cfg chip tiny_entry in
      List.iter
        (fun kv ->
          let w = Workload.decode ~batch:1 kv in
          let incr = Cmswitch.session_step s w in
          let full = Cmswitch.compile_model ~config:cfg chip tiny_entry w in
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d kv=%d incremental == full" jobs kv)
            (md5_of_mc full)
            (md5_of_mc incr.Cmswitch.step_cost))
        [ 10; 31; 32; 100 ])
    [ 1; 4 ]

let test_padded_graph_dominates () =
  let g_small = Transformer.build_layer tiny_cfg (Workload.decode ~batch:1 20) ~layer_index:0 in
  let g_big = Transformer.build_layer tiny_cfg (Workload.decode ~batch:1 31) ~layer_index:0 in
  (match Shape_infer.dominates ~over:g_big ~under:g_small with
  | Ok () -> ()
  | Error e -> Alcotest.failf "padded graph should dominate: %s" e);
  match Shape_infer.dominates ~over:g_small ~under:g_big with
  | Ok () -> Alcotest.fail "smaller graph must not dominate a larger one"
  | Error _ -> ()

(* ---- serving-side statistics --------------------------------------------- *)

let test_serving_tpt_percentiles () =
  let profile =
    { Serving.prefill_cycles = (fun s -> 10. *. float_of_int s);
      decode_cycles = (fun kv -> 5. +. float_of_int kv) }
  in
  let reqs =
    [ { Serving.arrival = 0.; prompt = 8; output = 10 };
      { Serving.arrival = 1.; prompt = 16; output = 20 } ]
  in
  let s = Serving.run profile reqs in
  Alcotest.(check bool) "tpt percentiles are positive" true (s.Serving.p50_tpt > 0.);
  Alcotest.(check bool) "p50 <= p95" true (s.Serving.p50_tpt <= s.Serving.p95_tpt);
  Alcotest.(check bool) "p95 <= p99" true (s.Serving.p95_tpt <= s.Serving.p99_tpt);
  (* the worst decode step is the last token of the longer request *)
  Alcotest.(check (float 1e-9)) "p99 is the worst decode step"
    (5. +. float_of_int (16 + 19))
    s.Serving.p99_tpt;
  let empty = Serving.run profile [] in
  Alcotest.(check (float 0.)) "empty trace has zero tpt" 0. empty.Serving.p50_tpt

let test_bucketed_profile () =
  let calls = ref [] in
  let ceiling l = ((l + 15) / 16) * 16 in
  let p =
    Serving.bucketed_profile ~ceiling
      ~prefill_cycles:(fun s ->
        calls := ("p", s) :: !calls;
        float_of_int s)
      ~decode_cycles:(fun kv ->
        calls := ("d", kv) :: !calls;
        float_of_int kv)
  in
  (* decode buckets the CONTEXT (kv+1) and hands the coster the bucketed kv *)
  Alcotest.(check (float 0.)) "decode kv=10 prices at ceiling(11)-1 = 15" 15.
    (p.Serving.decode_cycles 10);
  Alcotest.(check (float 0.)) "decode kv=14 shares the bucket" 15.
    (p.Serving.decode_cycles 14);
  Alcotest.(check (float 0.)) "decode kv=16 crosses" 31.
    (p.Serving.decode_cycles 16);
  Alcotest.(check (float 0.)) "prefill prices at the ceiling" 16.
    (p.Serving.prefill_cycles 10);
  let decode_calls = List.filter (fun (k, _) -> k = "d") !calls in
  Alcotest.(check int) "one decode coster call per distinct ceiling" 2
    (List.length decode_calls);
  Alcotest.check_raises "shrinking ceiling rejected"
    (Invalid_argument "Serving.bucketed_profile: ceiling 8 below length 10")
    (fun () ->
      ignore
        ((Serving.bucketed_profile
            ~ceiling:(fun _ -> 8)
            ~prefill_cycles:float_of_int ~decode_cycles:float_of_int)
           .Serving.prefill_cycles 10))

let suite =
  ( "dynshape",
    [
      Alcotest.test_case "pow2 boundaries" `Quick test_pow2_boundaries;
      Alcotest.test_case "explicit boundaries" `Quick test_explicit_boundaries;
      Alcotest.test_case "policy round trips" `Quick test_policy_round_trips;
      Alcotest.test_case "bucket cache sharing and isolation" `Quick
        test_bucket_cache_sharing_and_isolation;
      Alcotest.test_case "warm bucketed re-solves zero MILPs" `Quick
        test_warm_bucketed_resolves_zero_milps;
      Alcotest.test_case "session memo and crossings" `Quick
        test_session_memo_and_crossings;
      Alcotest.test_case "incremental differential (jobs 1 and 4)" `Quick
        test_incremental_differential;
      Alcotest.test_case "padded graph dominates" `Quick
        test_padded_graph_dominates;
      Alcotest.test_case "serving tpt percentiles" `Quick
        test_serving_tpt_percentiles;
      Alcotest.test_case "bucketed cost profile" `Quick test_bucketed_profile;
    ] )
