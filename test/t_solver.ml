(* Tests for the vendored LP/MILP solver (the Gurobi substitute): known
   optima, infeasibility/unboundedness detection, and exact agreement with
   brute-force enumeration on random small integer programs. *)

module Lp = Cim_solver.Lp
module Milp = Cim_solver.Milp
module Model = Cim_solver.Model

let lp n_vars maximize rows ?(lower = Array.make n_vars 0.)
    ?(upper = Array.make n_vars infinity) () =
  { Lp.n_vars; maximize; rows; lower; upper }

let expect_optimal name p expected_obj expected_values =
  match Lp.solve p with
  | Lp.Optimal s ->
    Alcotest.(check (float 1e-6)) (name ^ " objective") expected_obj s.Lp.objective;
    (match expected_values with
    | None -> ()
    | Some vs ->
      Alcotest.(check (array (float 1e-6))) (name ^ " values") vs s.Lp.values)
  | Lp.Infeasible -> Alcotest.failf "%s: unexpectedly infeasible" name
  | Lp.Unbounded -> Alcotest.failf "%s: unexpectedly unbounded" name
  | Lp.Iteration_limit -> Alcotest.failf "%s: unexpected iteration limit" name

let test_lp_textbook () =
  (* max 3x+2y st x+y<=4, x+3y<=6 -> (4,0), obj 12 *)
  expect_optimal "textbook"
    (lp 2 [| 3.; 2. |] [ ([| 1.; 1. |], Lp.Le, 4.); ([| 1.; 3. |], Lp.Le, 6.) ] ())
    12. (Some [| 4.; 0. |])

let test_lp_eq_ge () =
  (* min x+y st x+2y=4, x>=1 -> x=1,y=1.5 *)
  expect_optimal "eq+ge"
    (lp 2 [| -1.; -1. |] [ ([| 1.; 2. |], Lp.Eq, 4.); ([| 1.; 0. |], Lp.Ge, 1.) ] ())
    (-2.5) (Some [| 1.; 1.5 |])

let test_lp_bounds () =
  (* shifted lower bound and finite upper bound *)
  expect_optimal "bounds"
    (lp 1 [| 1. |] [] ~lower:[| 2. |] ~upper:[| 5. |] ())
    5. (Some [| 5. |]);
  expect_optimal "negative lower bound"
    (lp 1 [| -1. |] [ ([| 1. |], Lp.Le, 10.) ] ~lower:[| -3. |] ())
    3. (Some [| -3. |])

let test_lp_infeasible () =
  match Lp.solve (lp 1 [| 1. |] [ ([| 1. |], Lp.Le, 1.); ([| 1. |], Lp.Ge, 2.) ] ()) with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_lp_unbounded () =
  match Lp.solve (lp 1 [| 1. |] [] ()) with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_lp_degenerate () =
  (* redundant constraints must not break phase 1 *)
  expect_optimal "redundant rows"
    (lp 2 [| 1.; 1. |]
       [ ([| 1.; 1. |], Lp.Le, 2.); ([| 2.; 2. |], Lp.Le, 4.);
         ([| 1.; 1. |], Lp.Eq, 2.) ]
       ())
    2. None

let test_lp_ill_formed () =
  (* validation is opt-in: hot warm-started re-solves skip the O(n.m) scan *)
  (match Lp.solve ~validate:true (lp 2 [| 1. |] [] ()) with
  | exception Lp.Ill_formed _ -> ()
  | _ -> Alcotest.fail "expected Ill_formed (objective length)");
  match
    Lp.solve ~validate:true (lp 1 [| 1. |] [] ~lower:[| neg_infinity |] ())
  with
  | exception Lp.Ill_formed _ -> ()
  | _ -> Alcotest.fail "expected Ill_formed (infinite lower bound)"

let test_lp_iteration_limit () =
  (* a 1-iteration budget cannot finish phase 1 + phase 2 on a problem that
     needs pivots; the solver must report Iteration_limit, not raise *)
  let p =
    lp 2 [| 3.; 2. |]
      [ ([| 1.; 1. |], Lp.Ge, 1.); ([| 1.; 3. |], Lp.Le, 6. ) ]
      ~upper:[| 4.; 4. |] ()
  in
  match Lp.solve ~max_iters:1 p with
  | Lp.Iteration_limit -> ()
  | Lp.Optimal _ -> Alcotest.fail "cannot be optimal in one iteration"
  | Lp.Infeasible | Lp.Unbounded -> Alcotest.fail "feasible and bounded"

let test_lp_bound_flip () =
  (* max x+y st x+y<=3 with x,y in [0,2]: the optimum has one variable
     nonbasic at its upper bound, forcing the bound-flip machinery *)
  expect_optimal "bound flip"
    (lp 2 [| 1.; 1. |] [ ([| 1.; 1. |], Lp.Le, 3.) ] ~upper:[| 2.; 2. |] ())
    3. None;
  (* all-upper optimum with a slack-only constraint set: pure flips *)
  expect_optimal "all at upper"
    (lp 3 [| 1.; 2.; 3. |] [ ([| 1.; 1.; 1. |], Lp.Le, 100.) ]
       ~upper:[| 2.; 2.; 2. |] ())
    12. (Some [| 2.; 2.; 2. |])

let test_lp_warm_start () =
  (* solve, snapshot the basis, tighten one bound (the branch-and-bound
     child shape), re-solve warm: the result must match a cold solve *)
  let p =
    lp 2 [| 3.; 2. |]
      [ ([| 1.; 1. |], Lp.Le, 4.); ([| 1.; 3. |], Lp.Le, 6.) ] ()
  in
  match Lp.solve_info p with
  | Lp.Optimal root, Some basis ->
    Alcotest.(check (float 1e-6)) "root objective" 12. root.Lp.objective;
    (* structural statuses are exposed for the tightening pass *)
    Alcotest.(check bool) "x basic" true
      (Lp.basis_status basis 0 = Lp.Basic);
    let child = { p with Lp.upper = [| 3.; infinity |] } in
    (match Lp.solve ~warm:basis child, Lp.solve child with
    | Lp.Optimal w, Lp.Optimal c ->
      Alcotest.(check (float 1e-6)) "warm = cold" c.Lp.objective w.Lp.objective;
      Alcotest.(check (float 1e-6)) "child objective" 11. w.Lp.objective
    | _ -> Alcotest.fail "child solves must be optimal");
    (* a snapshot from the wrong shape is rejected, not trusted *)
    let other =
      lp 3 [| 1.; 1.; 1. |] [ ([| 1.; 1.; 1. |], Lp.Le, 3.) ] ()
    in
    (match Lp.solve ~warm:basis other with
    | Lp.Optimal s -> Alcotest.(check (float 1e-6)) "fallback cold" 3. s.Lp.objective
    | _ -> Alcotest.fail "mismatched warm basis must fall back to cold")
  | _ -> Alcotest.fail "expected optimal root with basis info"

let test_lp_reduced_costs () =
  (* max 3x+2y st x+y<=4: at the optimum (4,0), y is nonbasic at lower with
     reduced cost 2-3 = -1 (entering y trades 1-for-1 against x) *)
  let p = lp 2 [| 3.; 2. |] [ ([| 1.; 1. |], Lp.Le, 4.) ] () in
  match Lp.solve_info p with
  | Lp.Optimal _, Some basis ->
    let reduced = Lp.reduced_costs (Lp.prepare p) basis in
    Alcotest.(check (float 1e-6)) "basic reduced cost" 0. reduced.(0);
    Alcotest.(check (float 1e-6)) "nonbasic reduced cost" (-1.) reduced.(1)
  | _ -> Alcotest.fail "expected optimal with basis"

(* --- MILP --- *)

let test_milp_knapsack () =
  let p =
    lp 3 [| 5.; 4.; 3. |]
      [ ([| 2.; 3.; 1. |], Lp.Le, 5.) ]
      ~upper:[| 1.; 1.; 1. |] ()
  in
  match Milp.solve p ~kinds:[| Milp.Integer; Milp.Integer; Milp.Integer |] with
  | Milp.Optimal s -> Alcotest.(check (float 1e-6)) "knapsack obj" 9. s.Lp.objective
  | _ -> Alcotest.fail "expected optimal"

let test_milp_mixed () =
  (* max z st 5*com >= 3*z, com <= 4 integer -> z = 20/3 *)
  let p =
    lp 2 [| 0.; 1. |]
      [ ([| 5.; -3. |], Lp.Ge, 0.) ]
      ~upper:[| 4.; infinity |] ()
  in
  match Milp.solve p ~kinds:[| Milp.Integer; Milp.Continuous |] with
  | Milp.Optimal s ->
    Alcotest.(check (float 1e-6)) "mixed obj" (20. /. 3.) s.Lp.objective;
    Alcotest.(check (float 1e-6)) "com integral" 4. s.Lp.values.(0)
  | _ -> Alcotest.fail "expected optimal"

let test_milp_infeasible () =
  (* 2x = 1 with x integer *)
  let p = lp 1 [| 1. |] [ ([| 2. |], Lp.Eq, 1.) ] ~upper:[| 10. |] () in
  match Milp.solve p ~kinds:[| Milp.Integer |] with
  | Milp.Infeasible -> ()
  | _ -> Alcotest.fail "expected integer-infeasible"

let test_milp_node_limit_incumbent () =
  (* a knapsack whose root relaxation is fractional, truncated after one
     node: the rounding heuristic must still hand back a feasible integral
     incumbent inside Node_limit *)
  let rows = [ ([| 5.; 7.; 4.; 3. |], Lp.Le, 14.) ] in
  let p =
    lp 4 [| 8.; 11.; 6.; 4. |] rows ~upper:[| 1.; 1.; 1.; 1. |] ()
  in
  match Milp.solve ~max_nodes:1 p ~kinds:(Array.make 4 Milp.Integer) with
  | Milp.Node_limit (Some s) ->
    Array.iter
      (fun v ->
        Alcotest.(check bool) "integral" true
          (Float.abs (v -. Float.round v) < 1e-6))
      s.Lp.values;
    List.iter
      (fun (coeffs, _, rhs) ->
        let lhs =
          Array.fold_left ( +. ) 0.
            (Array.mapi (fun i c -> c *. s.Lp.values.(i)) coeffs)
        in
        Alcotest.(check bool) "feasible" true (lhs <= rhs +. 1e-6))
      rows;
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "within bounds" true
          (v >= p.Lp.lower.(i) -. 1e-6 && v <= p.Lp.upper.(i) +. 1e-6))
      s.Lp.values
  | Milp.Node_limit None -> Alcotest.fail "expected a rounding incumbent"
  | Milp.Optimal _ -> Alcotest.fail "one node cannot prove optimality here"
  | Milp.Infeasible | Milp.Unbounded ->
    Alcotest.fail "knapsack is feasible and bounded"

(* Random small ILPs checked against brute force. Two variables in [0, 6],
   two <= rows with small integer coefficients. *)
let arb_ilp =
  let open QCheck in
  let coeff = Gen.int_range (-3) 3 in
  make
    ~print:(fun (c1, c2, rows) ->
      Printf.sprintf "max %dx+%dy st %s" c1 c2
        (String.concat "; "
           (List.map (fun (a, b, r) -> Printf.sprintf "%dx+%dy<=%d" a b r) rows)))
    (Gen.triple coeff coeff
       (Gen.list_size (Gen.int_range 1 3)
          (Gen.triple coeff coeff (Gen.int_range 0 10))))

let brute_force (c1, c2, rows) =
  let best = ref neg_infinity in
  for x = 0 to 6 do
    for y = 0 to 6 do
      let feasible =
        List.for_all (fun (a, b, r) -> (a * x) + (b * y) <= r) rows
      in
      if feasible then best := Float.max !best (float_of_int ((c1 * x) + (c2 * y)))
    done
  done;
  !best

let prop_milp_matches_brute_force =
  QCheck.Test.make ~name:"2-var ILP matches brute force" ~count:300 arb_ilp
    (fun ((c1, c2, rows) as inst) ->
      let p =
        lp 2
          [| float_of_int c1; float_of_int c2 |]
          (List.map
             (fun (a, b, r) ->
               ([| float_of_int a; float_of_int b |], Lp.Le, float_of_int r))
             rows)
          ~upper:[| 6.; 6. |] ()
      in
      let expected = brute_force inst in
      match Milp.solve p ~kinds:[| Milp.Integer; Milp.Integer |] with
      | Milp.Optimal s -> Float.abs (s.Lp.objective -. expected) < 1e-6
      | Milp.Infeasible -> expected = neg_infinity
      | Milp.Unbounded | Milp.Node_limit _ -> false)

(* --- model facade --- *)

let test_model_basic () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:10. "x" in
  let y = Model.add_var m ~ub:10. ~integer:true "y" in
  Model.add_le m [ (1., x); (2., y) ] 14.;
  Model.add_ge m [ (1., x) ] 1.;
  Model.maximize m [ (3., x); (5., y) ];
  (match Model.solve m with
  | Model.Optimal obj ->
    (* x continuous and y integer: y = (14 - x)/2; best x=10 wait capacity:
       x + 2y <= 14, x <= 10 -> x = 10, y = 2 -> 40; or x = 4, y = 5 -> 37 *)
    Alcotest.(check (float 1e-6)) "model obj" 40. obj;
    Alcotest.(check int) "y integral" 2 (Model.int_value m y);
    Alcotest.(check (float 1e-6)) "x value" 10. (Model.value m x)
  | _ -> Alcotest.fail "expected optimal");
  Alcotest.(check int) "n_vars" 2 (Model.n_vars m);
  Alcotest.(check int) "n_constraints" 2 (Model.n_constraints m)

let test_model_minimize () =
  let m = Model.create () in
  let x = Model.add_var m "x" in
  Model.add_ge m [ (1., x) ] 3.;
  Model.minimize m [ (2., x) ];
  match Model.solve m with
  | Model.Optimal obj -> Alcotest.(check (float 1e-6)) "min obj" 6. obj
  | _ -> Alcotest.fail "expected optimal"

let test_model_no_solution_stored () =
  let m = Model.create () in
  let x = Model.add_var m "x" in
  match Model.value m x with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure before solve"

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "solver",
    [
      Alcotest.test_case "lp textbook" `Quick test_lp_textbook;
      Alcotest.test_case "lp eq/ge" `Quick test_lp_eq_ge;
      Alcotest.test_case "lp bounds" `Quick test_lp_bounds;
      Alcotest.test_case "lp infeasible" `Quick test_lp_infeasible;
      Alcotest.test_case "lp unbounded" `Quick test_lp_unbounded;
      Alcotest.test_case "lp degenerate" `Quick test_lp_degenerate;
      Alcotest.test_case "lp ill-formed" `Quick test_lp_ill_formed;
      Alcotest.test_case "lp iteration limit" `Quick test_lp_iteration_limit;
      Alcotest.test_case "lp bound flip" `Quick test_lp_bound_flip;
      Alcotest.test_case "lp warm start" `Quick test_lp_warm_start;
      Alcotest.test_case "lp reduced costs" `Quick test_lp_reduced_costs;
      Alcotest.test_case "milp knapsack" `Quick test_milp_knapsack;
      Alcotest.test_case "milp mixed" `Quick test_milp_mixed;
      Alcotest.test_case "milp integer-infeasible" `Quick test_milp_infeasible;
      Alcotest.test_case "milp node-limit incumbent" `Quick
        test_milp_node_limit_incumbent;
      qtest prop_milp_matches_brute_force;
      Alcotest.test_case "model facade" `Quick test_model_basic;
      Alcotest.test_case "model minimize" `Quick test_model_minimize;
      Alcotest.test_case "model value before solve" `Quick test_model_no_solution_stored;
    ] )
