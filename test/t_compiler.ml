(* Tests for the compiler passes: operator extraction and partitioning,
   the per-segment MIP, the DP segmentation, and placement. Most tests are
   invariants checked over real model graphs; the optimisation passes are
   additionally compared against brute force on small instances. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Cost = Cim_arch.Cost
module Opinfo = Cim_compiler.Opinfo
module Alloc = Cim_compiler.Alloc
module Plan = Cim_compiler.Plan
module Segment = Cim_compiler.Segment
module Ccfg = Cim_compiler.Cmswitch.Config
module Placement = Cim_compiler.Placement
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo

let chip = Config.dynaplasia

let graph_of key w =
  let e = Option.get (Zoo.find key) in
  match e.Zoo.layer with Some f -> f w | None -> e.Zoo.build w

let sample_graphs =
  lazy
    [
      ("tiny-cnn", Cim_models.Cnn.tiny_cnn ~batch:1 ());
      ("mlp", Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 256 ] ());
      ("bert-layer", graph_of "bert-large" (Workload.prefill ~batch:1 32));
      ("llama-decode", graph_of "llama2-7b" (Workload.decode ~batch:1 64));
      ("vgg16", graph_of "vgg16" (Workload.prefill ~batch:1 1));
    ]

(* --- Opinfo --- *)

let test_arrays_for () =
  (* Fig. 12: ceil(rows/320) * ceil(cols/40) with 8-bit weights *)
  Alcotest.(check int) "single tile" 1 (Opinfo.arrays_for chip ~rows:320 ~cols:40 ~replicas:1);
  Alcotest.(check int) "round up" 4 (Opinfo.arrays_for chip ~rows:321 ~cols:41 ~replicas:1);
  Alcotest.(check int) "replicas" 6 (Opinfo.arrays_for chip ~rows:320 ~cols:80 ~replicas:3);
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Opinfo.arrays_for: non-positive dimensions") (fun () ->
      ignore (Opinfo.arrays_for chip ~rows:0 ~cols:1 ~replicas:1))

let test_extract_invariants () =
  let cap = 48 in
  List.iter
    (fun (name, g) ->
      let ops = Opinfo.extract chip g in
      (* uids dense and ordered *)
      Array.iteri
        (fun i (op : Opinfo.t) ->
          Alcotest.(check int) (name ^ " uid dense") i op.Opinfo.uid)
        ops;
      Array.iter
        (fun (op : Opinfo.t) ->
          Alcotest.(check bool) (name ^ " cap respected") true
            (op.Opinfo.min_compute_arrays >= 1 && op.Opinfo.min_compute_arrays <= cap);
          Alcotest.(check bool) (name ^ " deps precede") true
            (List.for_all (fun d -> d < op.Opinfo.uid) op.Opinfo.deps);
          Alcotest.(check bool) (name ^ " non-negative costs") true
            (op.Opinfo.macs >= 0. && op.Opinfo.in_bytes >= 0 && op.Opinfo.out_bytes >= 0);
          Alcotest.(check bool) (name ^ " slice sane") true
            (op.Opinfo.out_lo >= 0 && op.Opinfo.out_hi > op.Opinfo.out_lo))
        ops)
    (Lazy.force sample_graphs)

let test_partition_conserves_macs () =
  (* the sub-operators of each node must sum to the node's MACs *)
  List.iter
    (fun (name, g) ->
      let stats = Cim_models.Intensity.node_stats g in
      let ops = Opinfo.extract chip g in
      List.iter
        (fun (s : Cim_models.Intensity.node_stats) ->
          let total =
            Array.fold_left
              (fun acc (op : Opinfo.t) ->
                if op.Opinfo.node_id = s.Cim_models.Intensity.node_id then
                  acc +. op.Opinfo.macs
                else acc)
              0. ops
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s macs conserved (%g vs %g)" name
               s.Cim_models.Intensity.node_name total s.Cim_models.Intensity.macs)
            true
            (Float.abs (total -. s.Cim_models.Intensity.macs)
             <= 1e-6 *. Float.max 1. s.Cim_models.Intensity.macs))
        stats)
    (Lazy.force sample_graphs)

let test_partition_covers_columns () =
  (* union of [out_lo, out_hi) slices covers the full output width *)
  List.iter
    (fun (name, g) ->
      let ops = Opinfo.extract chip g in
      let by_node = Hashtbl.create 16 in
      Array.iter
        (fun (op : Opinfo.t) ->
          let acc = Option.value (Hashtbl.find_opt by_node op.Opinfo.node_id) ~default:[] in
          Hashtbl.replace by_node op.Opinfo.node_id
            ((op.Opinfo.out_lo, op.Opinfo.out_hi) :: acc))
        ops;
      Hashtbl.iter
        (fun node_id slices ->
          let sorted = List.sort_uniq compare slices in
          let max_hi = List.fold_left (fun m (_, hi) -> max m hi) 0 sorted in
          (* contiguous cover from 0 to max_hi *)
          let covered =
            List.fold_left
              (fun pos (lo, hi) ->
                if lo <= pos && hi > pos then hi else if hi <= pos then pos else -1)
              0 sorted
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s node %d cover" name node_id)
            true (covered = max_hi))
        by_node)
    (Lazy.force sample_graphs)

let test_partition_fraction_validation () =
  let g = Cim_models.Cnn.tiny_cnn ~batch:1 () in
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Opinfo.extract: partition_fraction must be in (0, 1]")
    (fun () -> ignore (Opinfo.extract chip ~partition_fraction:0. g))

(* --- Alloc (the per-segment MIP) --- *)

let feasible_plan ops (p : Plan.seg_plan) =
  (* Eq. 5/8: com >= min arrays, capacity respected *)
  List.for_all
    (fun (a : Plan.op_alloc) ->
      a.Plan.com >= ops.(a.Plan.uid).Opinfo.min_compute_arrays
      && a.Plan.mem_in >= 0 && a.Plan.mem_out >= 0)
    p.Plan.allocs
  && Plan.arrays_used p <= chip.Chip.n_arrays

let test_alloc_constraints_hold () =
  List.iter
    (fun (name, g) ->
      let ops = Opinfo.extract chip g in
      (* widest prefix window that still fits the chip (Alg. 1 line 9) *)
      let hi = ref 0 in
      while
        !hi + 1 <= min 4 (Array.length ops - 1)
        && Opinfo.total_min_arrays ops ~lo:0 ~hi:(!hi + 1) <= chip.Chip.n_arrays
      do
        incr hi
      done;
      let hi = !hi in
      match Alloc.solve chip ops ~lo:0 ~hi with
      | None -> Alcotest.failf "%s: segment unexpectedly infeasible" name
      | Some p ->
        Alcotest.(check bool) (name ^ " constraints hold") true (feasible_plan ops p);
        (* intra equals the max of per-op Eq. 10 latencies *)
        let expect =
          List.fold_left
            (fun acc a -> Float.max acc (Alloc.op_latency chip ops.(a.Plan.uid) a))
            0. p.Plan.allocs
        in
        Alcotest.(check (float 1e-9)) (name ^ " intra = max latency") expect
          p.Plan.intra_cycles)
    (Lazy.force sample_graphs)

let test_alloc_force_all_compute () =
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 512; 512 ] () in
  let ops = Opinfo.extract chip g in
  let options = Ccfg.to_alloc_options (Ccfg.with_force_all_compute true Ccfg.default) in
  match Alloc.solve ~options chip ops ~lo:0 ~hi:(Array.length ops - 1) with
  | None -> Alcotest.fail "restricted segment infeasible"
  | Some p ->
    List.iter
      (fun (a : Plan.op_alloc) ->
        Alcotest.(check int) "no memory arrays" 0 (Plan.mem_of a))
      p.Plan.allocs

let test_alloc_dominates_all_compute () =
  (* the unrestricted optimum is never slower than the restricted one *)
  List.iter
    (fun (name, g) ->
      let ops = Opinfo.extract chip g in
      let hi = ref 0 in
      while
        !hi + 1 <= min 3 (Array.length ops - 1)
        && Opinfo.total_min_arrays ops ~lo:0 ~hi:(!hi + 1) <= chip.Chip.n_arrays
      do
        incr hi
      done;
      let hi = !hi in
      let free = Option.get (Alloc.solve chip ops ~lo:0 ~hi) in
      let forced =
        Option.get
          (Alloc.solve
             ~options:
               (Ccfg.to_alloc_options
                  (Ccfg.with_force_all_compute true Ccfg.default))
             chip ops ~lo:0 ~hi)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s dual-mode <= all-compute (%g vs %g)" name
           free.Plan.intra_cycles forced.Plan.intra_cycles)
        true
        (free.Plan.intra_cycles <= forced.Plan.intra_cycles *. (1. +. 1e-6)))
    (Lazy.force sample_graphs)

let test_alloc_infeasible_segment () =
  (* more minimum arrays than the chip has -> None (Alg. 1 line 13) *)
  let g = graph_of "vgg16" (Workload.prefill ~batch:1 1) in
  let ops = Opinfo.extract chip g in
  (* find a window whose min arrays exceed the chip *)
  let n = Array.length ops in
  let rec find lo hi =
    if hi >= n then None
    else if Opinfo.total_min_arrays ops ~lo ~hi > chip.Chip.n_arrays then Some (lo, hi)
    else find lo (hi + 1)
  in
  match find 0 1 with
  | None -> Alcotest.fail "no oversized window found"
  | Some (lo, hi) ->
    Alcotest.(check bool) "oversized window rejected" true
      (Alloc.solve chip ops ~lo ~hi = None)

(* brute-force check of the MIP on a 2-operator segment over a tiny chip *)
let test_alloc_vs_brute_force () =
  let small = Config.scaled ~name:"tiny" chip ~n_arrays:8 in
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 320; 80; 40 ] () in
  let ops = Opinfo.extract small g in
  Alcotest.(check int) "two ops" 2 (Array.length ops);
  let best = ref infinity in
  let n = small.Chip.n_arrays in
  (* enumerate all (com, mem) splits of both ops *)
  for c0 = ops.(0).Opinfo.min_compute_arrays to n do
    for m0 = 0 to n do
      for c1 = ops.(1).Opinfo.min_compute_arrays to n do
        for m1 = 0 to n do
          if c0 + m0 + c1 + m1 <= n then begin
            let l0 =
              Cost.op_latency small ~ops:ops.(0).Opinfo.macs ~ai:ops.(0).Opinfo.ai
                ~com:c0 ~mem:m0
            in
            let l1 =
              Cost.op_latency small ~ops:ops.(1).Opinfo.macs ~ai:ops.(1).Opinfo.ai
                ~com:c1 ~mem:m1
            in
            best := Float.min !best (Float.max l0 l1)
          end
        done
      done
    done
  done;
  match Alloc.solve small ops ~lo:0 ~hi:1 with
  | None -> Alcotest.fail "expected feasible"
  | Some p ->
    (* the MIP may additionally exploit Eq. 6 reuse, so it can only be as
       good or better than the no-reuse brute force *)
    Alcotest.(check bool)
      (Printf.sprintf "MIP (%g) <= brute force (%g)" p.Plan.intra_cycles !best)
      true
      (p.Plan.intra_cycles <= !best *. (1. +. 1e-6))

(* --- Segment (the DP) --- *)

let test_segment_covers_all_ops () =
  List.iter
    (fun (name, g) ->
      let ops = Opinfo.extract chip g in
      let segments, stats = Segment.run chip ops in
      (* segments tile [0, n) contiguously *)
      let expected_lo = ref 0 in
      List.iter
        (fun (s : Plan.seg_plan) ->
          Alcotest.(check int) (name ^ " contiguous") !expected_lo s.Plan.lo;
          Alcotest.(check bool) (name ^ " ordered") true (s.Plan.hi >= s.Plan.lo);
          expected_lo := s.Plan.hi + 1)
        segments;
      Alcotest.(check int) (name ^ " ends at n") (Array.length ops) !expected_lo;
      Alcotest.(check bool) (name ^ " did some work") true (stats.Segment.candidates > 0))
    (Lazy.force sample_graphs)

let test_segment_memoization_consistent () =
  let g = graph_of "bert-large" (Workload.prefill ~batch:1 32) in
  let ops = Opinfo.extract chip g in
  let with_memo, s1 =
    Segment.run ~options:(Ccfg.to_segment_options Ccfg.default) chip ops
  in
  let without, s2 =
    Segment.run
      ~options:(Ccfg.to_segment_options (Ccfg.with_memoize false Ccfg.default))
      chip ops
  in
  Alcotest.(check bool) "cache used" true (s1.Segment.mip_cache_hits > 0);
  Alcotest.(check int) "no cache -> no hits" 0 s2.Segment.mip_cache_hits;
  let total plans =
    List.fold_left (fun acc (s : Plan.seg_plan) -> acc +. s.Plan.intra_cycles) 0. plans
  in
  Alcotest.(check bool) "same intra totals" true
    (Float.abs (total with_memo -. total without)
     <= 1e-6 *. Float.max 1. (total with_memo))

(* DP quality vs exhaustive enumeration on a small operator list. The DP's
   inter-segment costs use the stored predecessor plan (the paper's
   L[i][A'] approximation), so exact optimality over the enumeration is not
   guaranteed — but the result must sit within a tight factor of the
   exhaustively best segmentation evaluated the same way. *)
let test_segment_vs_exhaustive () =
  let small = Config.scaled ~name:"tiny" chip ~n_arrays:12 in
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 320; 120; 120; 80; 40 ] () in
  let ops = Opinfo.extract small g in
  let n = Array.length ops in
  Alcotest.(check bool) "small instance" true (n <= 8);
  let ctx = Plan.make_ctx ops in
  let intra = Hashtbl.create 16 in
  let intra_of lo hi =
    match Hashtbl.find_opt intra (lo, hi) with
    | Some r -> r
    | None ->
      let r = Alloc.solve small ops ~lo ~hi in
      Hashtbl.replace intra (lo, hi) r;
      r
  in
  let best = ref infinity in
  let rec enumerate lo prev acc =
    if lo = n then best := Float.min !best acc
    else
      for hi = lo to n - 1 do
        match intra_of lo hi with
        | None -> ()
        | Some plan ->
          let ic = Plan.inter_segment_cost small ctx ~prev ~cur:plan in
          enumerate (hi + 1) (Some plan)
            (acc +. plan.Plan.intra_cycles +. Plan.inter_total ic)
      done
  in
  enumerate 0 None 0.;
  let segments, _ = Segment.run small ops in
  let dp_total =
    (Plan.roll_up ~compiler:"dp" small ops segments).Plan.total_cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "DP (%g) within 10%% of exhaustive best (%g)" dp_total !best)
    true
    (dp_total <= !best *. 1.10 +. 1e-9)

(* --- Placement --- *)

let test_placement_capacity_and_modes () =
  List.iter
    (fun (name, g) ->
      let ops = Opinfo.extract chip g in
      let segments, _ = Segment.run chip ops in
      let places = Placement.place chip ops segments in
      List.iter
        (fun (sp : Placement.seg_place) ->
          (* no coordinate used twice within a segment (excluding sanctioned
             mem_out/mem_in sharing across producer/consumer) *)
          let seen = Hashtbl.create 32 in
          let add kind c =
            let prev = Hashtbl.find_opt seen c in
            (match (prev, kind) with
            | Some `Compute, _ | _, `Compute when prev <> None ->
              Alcotest.failf "%s: array reused across modes" name
            | _ -> ());
            Hashtbl.replace seen c kind
          in
          List.iter
            (fun (op : Placement.op_place) ->
              List.iter (add `Compute) op.Placement.compute;
              List.iter (add `Memory) op.Placement.mem_in;
              List.iter (add `Memory) op.Placement.mem_out;
              (* counts match the plan *)
              let a =
                List.find
                  (fun (x : Plan.op_alloc) -> x.Plan.uid = op.Placement.uid)
                  sp.Placement.plan.Plan.allocs
              in
              Alcotest.(check int) (name ^ " compute count") a.Plan.com
                (List.length op.Placement.compute);
              Alcotest.(check int) (name ^ " mem_in count") a.Plan.mem_in
                (List.length op.Placement.mem_in);
              Alcotest.(check int) (name ^ " mem_out count") a.Plan.mem_out
                (List.length op.Placement.mem_out))
            sp.Placement.ops)
        places)
    (Lazy.force sample_graphs)

let test_placement_switch_economy () =
  (* two identical consecutive segments must not switch anything after the
     first *)
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 512 ] () in
  let ops = Opinfo.extract chip g in
  let seg = Option.get (Alloc.solve chip ops ~lo:0 ~hi:(Array.length ops - 1)) in
  let places = Placement.place chip ops [ seg; seg ] in
  match places with
  | [ _first; second ] ->
    Alcotest.(check int) "no switches on repeat" 0
      (List.length second.Placement.to_compute + List.length second.Placement.to_memory)
  | _ -> Alcotest.fail "expected two placements"

let test_realized_switches_counts () =
  let g = Cim_models.Cnn.tiny_cnn ~batch:1 () in
  let ops = Opinfo.extract chip g in
  let segments, _ = Segment.run chip ops in
  let places = Placement.place chip ops segments in
  let m2c, c2m = Placement.realized_switches places in
  let manual =
    List.fold_left
      (fun (a, b) (sp : Placement.seg_place) ->
        (a + List.length sp.Placement.to_compute, b + List.length sp.Placement.to_memory))
      (0, 0) places
  in
  Alcotest.(check (pair int int)) "switch totals" manual (m2c, c2m)

let suite =
  ( "compiler-passes",
    [
      Alcotest.test_case "arrays_for (Fig. 12)" `Quick test_arrays_for;
      Alcotest.test_case "extraction invariants" `Slow test_extract_invariants;
      Alcotest.test_case "partition conserves MACs" `Slow test_partition_conserves_macs;
      Alcotest.test_case "partition covers columns" `Slow test_partition_covers_columns;
      Alcotest.test_case "partition fraction validated" `Quick test_partition_fraction_validation;
      Alcotest.test_case "MIP constraints hold" `Slow test_alloc_constraints_hold;
      Alcotest.test_case "MIP all-compute restriction" `Quick test_alloc_force_all_compute;
      Alcotest.test_case "dual-mode dominates all-compute" `Slow test_alloc_dominates_all_compute;
      Alcotest.test_case "oversized segment rejected" `Quick test_alloc_infeasible_segment;
      Alcotest.test_case "MIP vs brute force" `Slow test_alloc_vs_brute_force;
      Alcotest.test_case "DP covers all operators" `Slow test_segment_covers_all_ops;
      Alcotest.test_case "DP memoization consistent" `Slow test_segment_memoization_consistent;
      Alcotest.test_case "DP vs exhaustive" `Slow test_segment_vs_exhaustive;
      Alcotest.test_case "placement counts and modes" `Slow test_placement_capacity_and_modes;
      Alcotest.test_case "placement switch economy" `Quick test_placement_switch_economy;
      Alcotest.test_case "realized switch totals" `Quick test_realized_switches_counts;
    ] )
