(* End-to-end compiler tests: the full CMSwitch pipeline and the baseline
   compilers over real benchmarks, checking the relationships the paper's
   evaluation depends on (dominance ordering, convergence to CIM-MLC,
   block-reuse consistency, and flow well-formedness). *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Cmswitch = Cim_compiler.Cmswitch
module Segment = Cim_compiler.Segment
module Alloc = Cim_compiler.Alloc
module Plan = Cim_compiler.Plan
module Baseline = Cim_baselines.Baseline
module Flow = Cim_metaop.Flow

let chip = Config.dynaplasia

let restricted_config = Cmswitch.Config.(with_force_all_compute true default)

let bench_cases =
  [
    ("mobilenetv2", Workload.prefill ~batch:1 1);
    ("resnet18", Workload.prefill ~batch:1 1);
    ("bert-large", Workload.prefill ~batch:1 64);
    ("llama2-7b", Workload.decode ~batch:1 64);
    ("opt-13b", Workload.decode ~batch:1 64);
  ]

let test_flows_validate () =
  List.iter
    (fun (key, w) ->
      let e = Option.get (Zoo.find key) in
      let g = match e.Zoo.layer with Some f -> f w | None -> e.Zoo.build w in
      let r = Cmswitch.compile chip g in
      Alcotest.(check bool) (key ^ " flow validates") true
        (Flow.validate chip r.Cmswitch.program = Ok ());
      Alcotest.(check bool) (key ^ " has switches") true
        (Flow.count_switches r.Cmswitch.program > 0);
      Alcotest.(check bool) (key ^ " positive latency") true
        (r.Cmswitch.schedule.Plan.total_cycles > 0.))
    bench_cases

let test_cmswitch_dominates_baselines () =
  List.iter
    (fun (key, w) ->
      let e = Option.get (Zoo.find key) in
      let cms = (Cmswitch.compile_model chip e w).Cmswitch.total_cycles in
      List.iter
        (fun which ->
          let b = Baseline.compile_model which chip e w in
          Alcotest.(check bool)
            (Printf.sprintf "%s: CMSwitch (%.3e) <= %s (%.3e)" key cms
               (Baseline.name which) b)
            true
            (cms <= b *. (1. +. 1e-9)))
        [ Baseline.Cim_mlc; Baseline.Puma; Baseline.Occ ])
    bench_cases

let test_baseline_ordering () =
  (* CIM-MLC (cost-aware DP) never loses to OCC (serial greedy) *)
  List.iter
    (fun (key, w) ->
      let e = Option.get (Zoo.find key) in
      let mlc = Baseline.compile_model Baseline.Cim_mlc chip e w in
      let occ = Baseline.compile_model Baseline.Occ chip e w in
      Alcotest.(check bool)
        (Printf.sprintf "%s: CIM-MLC (%.3e) <= OCC (%.3e)" key mlc occ)
        true (mlc <= occ *. (1. +. 1e-9)))
    bench_cases

let test_restricted_equals_cim_mlc () =
  (* CMSwitch with the all-compute restriction IS the CIM-MLC baseline *)
  let e = Option.get (Zoo.find "bert-large") in
  let w = Workload.prefill ~batch:1 32 in
  let g = (Option.get e.Zoo.layer) w in
  let restricted = Cmswitch.compile ~config:restricted_config chip g in
  let mlc = Baseline.compile Baseline.Cim_mlc chip g in
  Alcotest.(check bool) "identical totals" true
    (Float.abs
       (restricted.Cmswitch.schedule.Plan.total_cycles -. mlc.Plan.total_cycles)
     <= 1e-6 *. mlc.Plan.total_cycles);
  (* and it uses no memory arrays *)
  Alcotest.(check (float 0.)) "no memory mode" 0.
    (Cmswitch.memory_mode_ratio restricted)

let test_memory_ratio_range () =
  List.iter
    (fun (key, w) ->
      let e = Option.get (Zoo.find key) in
      let mc = Cmswitch.compile_model chip e w in
      Alcotest.(check bool) (key ^ " ratio in [0,1)") true
        (mc.Cmswitch.mem_ratio >= 0. && mc.Cmswitch.mem_ratio < 1.))
    bench_cases

let test_block_reuse_consistency () =
  (* compile_model's block-reuse total = n_layers * layer + head *)
  let e = Option.get (Zoo.find "bert-large") in
  let w = Workload.prefill ~batch:1 32 in
  let mc = Cmswitch.compile_model chip e w in
  match (mc.Cmswitch.layer, mc.Cmswitch.head) with
  | Some layer, Some head ->
    let expect =
      (float_of_int e.Zoo.n_layers *. layer.Cmswitch.schedule.Plan.total_cycles)
      +. head.Cmswitch.schedule.Plan.total_cycles
    in
    Alcotest.(check (float 1e-6)) "replicated total" expect mc.Cmswitch.total_cycles
  | _ -> Alcotest.fail "expected layer and head results"

let test_cnn_compiles_whole () =
  let e = Option.get (Zoo.find "mobilenetv2") in
  let mc = Cmswitch.compile_model chip e (Workload.prefill ~batch:1 1) in
  Alcotest.(check bool) "whole-graph result" true (mc.Cmswitch.whole <> None);
  Alcotest.(check bool) "no layer result" true (mc.Cmswitch.layer = None)

let test_prime_preset_compiles () =
  let chip = Config.prime in
  let e = Option.get (Zoo.find "bert-large") in
  let w = Workload.prefill ~batch:1 64 in
  let cms = (Cmswitch.compile_model chip e w).Cmswitch.total_cycles in
  let mlc = Baseline.compile_model Baseline.Cim_mlc chip e w in
  Alcotest.(check bool) "PRIME: CMSwitch <= CIM-MLC" true (cms <= mlc *. (1. +. 1e-9))

let test_speedup_band_fig14 () =
  (* the headline result: geomean speedup over CIM-MLC across the Fig. 14
     benchmarks must sit in the paper's band (paper: 1.31x; we accept
     1.1-1.6) and every model must be >= 1.0 *)
  let speedups =
    List.map
      (fun (key, w) ->
        let e = Option.get (Zoo.find key) in
        let cms = (Cmswitch.compile_model chip e w).Cmswitch.total_cycles in
        let mlc = Baseline.compile_model Baseline.Cim_mlc chip e w in
        mlc /. cms)
      bench_cases
  in
  List.iter
    (fun s -> Alcotest.(check bool) "each >= 1.0" true (s >= 1. -. 1e-9))
    speedups;
  let geo = Cim_util.Stats.geomean speedups in
  Alcotest.(check bool)
    (Printf.sprintf "geomean %.2f in [1.1, 1.6]" geo)
    true
    (geo >= 1.1 && geo <= 1.6)

let test_bert_memory_ratio_decays () =
  (* Fig. 16's last row: the memory-mode ratio goes to ~zero as sequence
     length (arithmetic intensity) grows *)
  let e = Option.get (Zoo.find "bert-large") in
  let ratio seq =
    (Cmswitch.compile_model chip e (Workload.prefill ~batch:4 seq)).Cmswitch.mem_ratio
  in
  let short = ratio 32 and long_ = ratio 2048 in
  Alcotest.(check bool)
    (Printf.sprintf "ratio decays (%.3f -> %.3f)" short long_)
    true
    (long_ < short /. 2.)

let test_in_place_kv_switch () =
  (* §5.3: on decode workloads the K projection's output buffers are
     claimed in place by the attention matmul — no weight reprogramming *)
  let e = Option.get (Zoo.find "llama2-7b") in
  let g = (Option.get e.Zoo.layer) (Workload.decode ~batch:1 512) in
  let r = Cmswitch.compile chip g in
  let claims =
    List.concat_map
      (fun (sp : Cim_compiler.Placement.seg_place) ->
        List.concat_map
          (fun (op : Cim_compiler.Placement.op_place) ->
            op.Cim_compiler.Placement.in_place)
          sp.Cim_compiler.Placement.ops)
      r.Cmswitch.places
  in
  Alcotest.(check bool) "at least one in-place claim" true (claims <> []);
  (* in-place arrays appear in their op's compute list too *)
  List.iter
    (fun (sp : Cim_compiler.Placement.seg_place) ->
      List.iter
        (fun (op : Cim_compiler.Placement.op_place) ->
          List.iter
            (fun c ->
              Alcotest.(check bool) "in_place subset of compute" true
                (List.mem c op.Cim_compiler.Placement.compute))
            op.Cim_compiler.Placement.in_place)
        sp.Cim_compiler.Placement.ops)
      r.Cmswitch.places;
  (* the flow still validates and the timing simulator agrees *)
  Alcotest.(check bool) "flow valid" true
    (Flow.validate chip r.Cmswitch.program = Ok ());
  let t = Cim_sim.Timing.run chip r.Cmswitch.program in
  let sim = t.Cim_sim.Timing.cycles.Cim_sim.Timing.total in
  let total = r.Cmswitch.schedule.Plan.total_cycles in
  Alcotest.(check bool) "timing ~ schedule (within the wb estimate)" true
    (sim <= total +. 1e-6 *. total
     && total <= sim +. r.Cmswitch.schedule.Plan.writeback +. 1e-6 *. total)

let test_compile_deterministic () =
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 512; 128 ] () in
  let a = Cmswitch.compile chip g and b = Cmswitch.compile chip g in
  Alcotest.(check (float 0.)) "same cycles"
    a.Cmswitch.schedule.Plan.total_cycles b.Cmswitch.schedule.Plan.total_cycles;
  Alcotest.(check bool) "same program" true
    (a.Cmswitch.program = b.Cmswitch.program)

let suite =
  ( "end-to-end",
    [
      Alcotest.test_case "flows validate" `Slow test_flows_validate;
      Alcotest.test_case "CMSwitch dominates baselines" `Slow
        test_cmswitch_dominates_baselines;
      Alcotest.test_case "baseline ordering" `Slow test_baseline_ordering;
      Alcotest.test_case "restricted CMSwitch = CIM-MLC" `Quick
        test_restricted_equals_cim_mlc;
      Alcotest.test_case "memory ratio in range" `Slow test_memory_ratio_range;
      Alcotest.test_case "block-reuse consistency" `Quick test_block_reuse_consistency;
      Alcotest.test_case "CNNs compile whole" `Quick test_cnn_compiles_whole;
      Alcotest.test_case "PRIME preset compiles" `Quick test_prime_preset_compiles;
      Alcotest.test_case "Fig. 14 speedup band" `Slow test_speedup_band_fig14;
      Alcotest.test_case "Fig. 16 ratio decay" `Slow test_bert_memory_ratio_decays;
      Alcotest.test_case "in-place KV switch (§5.3)" `Quick test_in_place_kv_switch;
      Alcotest.test_case "compilation deterministic" `Quick test_compile_deterministic;
    ] )
