(* Differential test of the per-segment MILP (§4.3.2) against a brute-force
   oracle. For tiny segments (<= 3 operators on chips of <= 10 arrays) the
   feasible space of Eq. 5-8 is small enough to enumerate exhaustively: every
   (com, mem_in, mem_out) assignment whose capacity shortfall a best-case
   dependency-reuse assignment can cover. The oracle minimises the same
   Eq. 10 latency the solver linearises, so on Optimal outcomes the plan
   must land within the branch-and-bound gap of the enumerated optimum, and
   the two sides must agree exactly on infeasibility. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Cost = Cim_arch.Cost
module Alloc = Cim_compiler.Alloc
module Ccfg = Cim_compiler.Cmswitch.Config
module Opinfo = Cim_compiler.Opinfo
module Plan = Cim_compiler.Plan
module Intensity = Cim_models.Intensity

let ceil_div = Cim_util.Bytesize.ceil_div

(* ---- random instances ---------------------------------------------------- *)

type op_spec = {
  macs : int;
  in_b : int;        (* byte sizes stay within a few row_bytes so the mem
                        variable caps — and the enumeration — stay small *)
  out_b : int;
  w_b : int;
  minc : int;
  dep_mask : int;    (* bit k set: depends on op k (k < index) *)
}

type instance = { n_arrays : int; specs : op_spec list }

let chip_of inst = Config.scaled ~name:"tiny" Config.dynaplasia ~n_arrays:inst.n_arrays

let ops_of inst =
  Array.of_list
    (List.mapi
       (fun i s ->
         let traffic = max 1 (s.in_b + s.out_b + s.w_b) in
         {
           Opinfo.uid = i;
           node_id = i;
           label = Printf.sprintf "op%d" i;
           kind = (if s.w_b > 0 then Intensity.Static_weight else Intensity.Dynamic_matmul);
           macs = float_of_int s.macs;
           ai = float_of_int s.macs /. float_of_int traffic;
           in_bytes = s.in_b;
           out_bytes = s.out_b;
           weight_bytes = s.w_b;
           stationary_rows = 16;
           stationary_cols = 16;
           replicas = 1;
           min_compute_arrays = s.minc;
           out_lo = 0;
           out_hi = 16;
           inputs = [ "x" ];
           output = Printf.sprintf "t%d" i;
           deps =
             List.filteri (fun k _ -> s.dep_mask land (1 lsl k) <> 0)
               (List.init i Fun.id);
         })
       inst.specs)

let gen_instance =
  let open QCheck.Gen in
  let gen_op i =
    (* macs spans ~1e2..1e6 so instances land on both sides of the
       compute-bound / memory-bound divide *)
    let* e = int_range 2 6 in
    let* m = int_range 1 9 in
    let* in_b = int_range 1 80 in
    let* out_b = int_range 1 80 in
    let* w_b = int_range 0 80 in
    let* minc = int_range 1 2 in
    let* dep_mask = int_range 0 ((1 lsl i) - 1) in
    return { macs = m * int_of_float (10. ** float_of_int e); in_b; out_b; w_b; minc; dep_mask }
  in
  let* nops = int_range 1 3 in
  let* n_arrays = int_range 3 10 in
  let* specs = flatten_l (List.init nops gen_op) in
  return { n_arrays; specs }

let print_instance inst =
  Printf.sprintf "n_arrays=%d [%s]" inst.n_arrays
    (String.concat "; "
       (List.map
          (fun s ->
            Printf.sprintf
              "{macs=%d in=%d out=%d w=%d minc=%d deps=%#x}" s.macs s.in_b
              s.out_b s.w_b s.minc s.dep_mask)
          inst.specs))

let arb_instance = QCheck.make ~print:print_instance gen_instance

(* ---- the oracle ---------------------------------------------------------- *)

(* Mirrors Alloc.build's variable bounds exactly. *)
let mem_caps chip (op : Opinfo.t) =
  let n = chip.Chip.n_arrays in
  let row_bytes = max 1 (chip.Chip.cols * chip.Chip.cell_bits / 8) in
  let cap side = min n (ceil_div (max 1 side) row_bytes) in
  (cap (op.Opinfo.in_bytes + op.Opinfo.weight_bytes), cap op.Opinfo.out_bytes)

let dep_pairs (ops : Opinfo.t array) =
  List.concat
    (List.init (Array.length ops) (fun j ->
         List.filter_map
           (fun d -> if d < j then Some (d, j) else None)
           ops.(j).Opinfo.deps))

(* Largest total reuse realisable for a fixed allocation: r_{i,j} bounded by
   the byte cap (Eq. 6) and by the producer's mem_out / consumer's mem_in
   group sums. Pair caps are tiny here, so plain enumeration. *)
let max_reuse chip (ops : Opinfo.t array) pairs allocs =
  let array_bytes = Chip.array_mem_bytes chip in
  let mout = Array.map (fun (a : Plan.op_alloc) -> a.Plan.mem_out) allocs in
  let min_ = Array.map (fun (a : Plan.op_alloc) -> a.Plan.mem_in) allocs in
  let rec go = function
    | [] -> 0
    | (i, j) :: rest ->
      let cap =
        ceil_div
          (max 1 (min ops.(i).Opinfo.out_bytes ops.(j).Opinfo.in_bytes))
          array_bytes
      in
      let best = ref 0 in
      for r = 0 to min cap (min mout.(i) min_.(j)) do
        mout.(i) <- mout.(i) - r;
        min_.(j) <- min_.(j) - r;
        best := max !best (r + go rest);
        mout.(i) <- mout.(i) + r;
        min_.(j) <- min_.(j) + r
      done;
      !best
  in
  go pairs

(* Exhaustive minimum of Eq. 10's max-latency over the feasible space. *)
let oracle chip (ops : Opinfo.t array) =
  let n = chip.Chip.n_arrays in
  let nops = Array.length ops in
  let pairs = dep_pairs ops in
  let allocs =
    Array.init nops (fun i -> { Plan.uid = i; com = 0; mem_in = 0; mem_out = 0 })
  in
  let best = ref infinity in
  let rec assign i used worst =
    if worst >= !best then ()
    else if i = nops then begin
      if used - max_reuse chip ops pairs allocs <= n then best := Float.min !best worst
    end
    else begin
      let op = ops.(i) in
      let cap_in, cap_out = mem_caps chip op in
      for com = op.Opinfo.min_compute_arrays to n do
        for mem_in = 0 to cap_in do
          for mem_out = 0 to cap_out do
            allocs.(i) <- { Plan.uid = i; com; mem_in; mem_out };
            let lat = Alloc.op_latency chip op allocs.(i) in
            assign (i + 1) (used + com + mem_in + mem_out) (Float.max worst lat)
          done
        done
      done
    end
  in
  assign 0 0 0.;
  if !best = infinity then None else Some !best

(* The MILP caps z at a chip-wide throughput bound; when the true optimum
   sits against that cap the solver may legitimately return any alloc at the
   cap, so the gap comparison only applies strictly below it. *)
let z_cap chip (ops : Opinfo.t array) =
  let n = chip.Chip.n_arrays in
  Array.fold_left
    (fun acc (op : Opinfo.t) ->
      if op.Opinfo.macs <= 0. then acc
      else
        Float.min acc
          (Float.min
             (Cost.compute_rate chip ~com:n /. op.Opinfo.macs)
             (Cost.memory_rate chip ~mem:n *. op.Opinfo.ai /. op.Opinfo.macs)))
    infinity ops

(* ---- the property -------------------------------------------------------- *)

let solver_options =
  Ccfg.to_alloc_options (Ccfg.with_milp_max_nodes 50_000 Ccfg.default)

let check inst =
  let chip = chip_of inst in
  let ops = ops_of inst in
  let hi = Array.length ops - 1 in
  let outcome = Alloc.solve_outcome ~options:solver_options chip ops ~lo:0 ~hi in
  match (outcome, oracle chip ops) with
  | Alloc.Infeasible, None -> true
  | Alloc.Infeasible, Some opt ->
    QCheck.Test.fail_reportf "solver infeasible but oracle found latency %.6g" opt
  | (Alloc.Optimal p | Alloc.Incumbent p), None ->
    QCheck.Test.fail_reportf "solver returned a plan (%.6g) on an infeasible instance"
      p.Plan.intra_cycles
  | Alloc.Truncated_no_incumbent, _ ->
    QCheck.Test.fail_reportf "solver exhausted %d nodes on a 3-op instance"
      solver_options.Alloc.milp_max_nodes
  | Alloc.Optimal p, Some opt ->
    (* the plan is a point of the enumerated space: never better than the
       true optimum, and within the 5e-3 branch-and-bound gap of it unless
       the z upper bound is the binding constraint *)
    if p.Plan.intra_cycles < opt *. (1. -. 1e-9) then
      QCheck.Test.fail_reportf "plan %.17g beats the oracle optimum %.17g"
        p.Plan.intra_cycles opt;
    let against_cap = 1. /. opt >= z_cap chip ops *. (1. -. 1e-6) in
    if (not against_cap) && p.Plan.intra_cycles > opt *. 1.01 then
      QCheck.Test.fail_reportf "plan %.17g misses the oracle optimum %.17g by > gap"
        p.Plan.intra_cycles opt;
    true
  | Alloc.Incumbent p, Some opt ->
    (* node-limited: only feasibility is promised *)
    p.Plan.intra_cycles >= opt *. (1. -. 1e-9)

let milp_vs_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"MILP matches brute-force oracle" ~count:220
       arb_instance check)

(* ---- revised simplex vs the dense oracle --------------------------------- *)

module Lp = Cim_solver.Lp
module Lp_dense = Cim_solver.Lp_dense
module Milp = Cim_solver.Milp

let show_lp_result = function
  | Lp.Optimal s -> Printf.sprintf "Optimal %.9g" s.Lp.objective
  | Lp.Infeasible -> "Infeasible"
  | Lp.Unbounded -> "Unbounded"
  | Lp.Iteration_limit -> "Iteration_limit"

(* the returned vertex must be a point of the stated polytope, not just
   carry the right objective *)
let vertex_feasible (p : Lp.problem) (s : Lp.solution) =
  let tol v = 1e-6 *. (1. +. Float.abs v) in
  let ok = ref true in
  Array.iteri
    (fun j v ->
      if v < p.Lp.lower.(j) -. tol p.Lp.lower.(j) then ok := false;
      if v > p.Lp.upper.(j) +. tol p.Lp.upper.(j) then ok := false)
    s.Lp.values;
  List.iter
    (fun (coeffs, op, rhs) ->
      let lhs = ref 0. in
      Array.iteri (fun j c -> lhs := !lhs +. (c *. s.Lp.values.(j))) coeffs;
      let lhs = !lhs in
      match op with
      | Lp.Le -> if lhs > rhs +. tol rhs then ok := false
      | Lp.Ge -> if lhs < rhs -. tol rhs then ok := false
      | Lp.Eq -> if Float.abs (lhs -. rhs) > tol rhs then ok := false)
    p.Lp.rows;
  !ok

let compare_backends name (p : Lp.problem) =
  match (Lp.solve p, Lp_dense.solve p) with
  | Lp.Optimal r, Lp.Optimal d ->
    let tol = 1e-6 *. (1. +. Float.abs d.Lp.objective) in
    if Float.abs (r.Lp.objective -. d.Lp.objective) > tol then
      QCheck.Test.fail_reportf "%s: revised %.17g, dense oracle %.17g" name
        r.Lp.objective d.Lp.objective;
    if not (vertex_feasible p r) then
      QCheck.Test.fail_reportf "%s: revised vertex violates the polytope" name;
    true
  | Lp.Infeasible, Lp.Infeasible | Lp.Unbounded, Lp.Unbounded -> true
  | r, d ->
    QCheck.Test.fail_reportf "%s: revised says %s, dense oracle says %s" name
      (show_lp_result r) (show_lp_result d)

(* The same 220 random segment models, replayed at LP granularity: the
   revised simplex must agree with the dense oracle on the root relaxation
   (objective to 1e-6, returned vertex feasible) and, at gap 0, the two
   branch-and-bound backends must find integral optima of equal value. *)
let check_segment_lp inst =
  let chip = chip_of inst in
  let ops = ops_of inst in
  let hi = Array.length ops - 1 in
  let p, kinds = Alloc.segment_problem chip ops ~lo:0 ~hi in
  ignore (compare_backends "segment relaxation" p);
  let milp backend = Milp.solve ~gap:0. ~backend p ~kinds in
  match (milp Milp.Revised, milp Milp.Dense) with
  | Milp.Optimal r, Milp.Optimal d ->
    let tol = 1e-6 *. (1. +. Float.abs d.Lp.objective) in
    if Float.abs (r.Lp.objective -. d.Lp.objective) > tol then
      QCheck.Test.fail_reportf "segment MILP: revised %.17g, dense %.17g"
        r.Lp.objective d.Lp.objective;
    vertex_feasible p r
    || QCheck.Test.fail_reportf "segment MILP: revised vertex infeasible"
  | Milp.Infeasible, Milp.Infeasible -> true
  | r, d ->
    let show = function
      | Milp.Optimal s -> Printf.sprintf "Optimal %.9g" s.Lp.objective
      | Milp.Infeasible -> "Infeasible"
      | Milp.Unbounded -> "Unbounded"
      | Milp.Node_limit _ -> "Node_limit"
    in
    QCheck.Test.fail_reportf "segment MILP: revised says %s, dense says %s"
      (show r) (show d)

let segment_lp_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"revised simplex matches dense oracle on segments"
       ~count:220 arb_instance check_segment_lp)

(* Random degenerate / upper-bounded LPs aimed at the paths the segment
   models exercise least: finite boxes whose optima sit on variable bounds
   (bound flips), duplicated and tied rows (degenerate pivots), Eq rows. *)
type lp_spec = {
  ncols : int;
  obj : int list;
  ub_spec : int option list;      (* None = infinity *)
  lrows : (int list * int * int) list;  (* coeffs, op selector, rhs *)
  dup_first : bool;
}

let lp_of_spec spec =
  let n = spec.ncols in
  let arr l = Array.of_list (List.map float_of_int l) in
  let rows =
    List.map
      (fun (coeffs, opsel, rhs) ->
        let op = match opsel mod 10 with
          | 0 | 1 -> Lp.Ge
          | 2 -> Lp.Eq
          | _ -> Lp.Le
        in
        (arr coeffs, op, float_of_int rhs))
      spec.lrows
  in
  let rows =
    match (spec.dup_first, rows) with
    | true, (c, op, rhs) :: _ -> (Array.copy c, op, rhs) :: rows
    | _ -> rows
  in
  {
    Lp.n_vars = n;
    maximize = arr spec.obj;
    rows;
    lower = Array.make n 0.;
    upper =
      Array.of_list
        (List.map
           (function Some u -> float_of_int u | None -> infinity)
           spec.ub_spec);
  }

let gen_lp_spec =
  let open QCheck.Gen in
  let* ncols = int_range 1 4 in
  let* obj = list_repeat ncols (int_range (-3) 3) in
  let* ub_spec =
    list_repeat ncols
      (frequency [ (3, map (fun u -> Some u) (int_range 0 4)); (1, return None) ])
  in
  let* nrows = int_range 0 4 in
  let* lrows =
    list_repeat nrows
      (triple
         (list_repeat ncols (int_range (-2) 2))
         (int_range 0 9)
         (* small rhs set so several rows tie at the optimum *)
         (int_range 0 3))
  in
  let* dup_first = bool in
  return { ncols; obj; ub_spec; lrows; dup_first }

let print_lp_spec spec =
  let p = lp_of_spec spec in
  Printf.sprintf "max [%s] rows=[%s] ub=[%s]"
    (String.concat " " (Array.to_list (Array.map string_of_float p.Lp.maximize)))
    (String.concat "; "
       (List.map
          (fun (c, op, rhs) ->
            Printf.sprintf "[%s] %s %g"
              (String.concat " " (Array.to_list (Array.map string_of_float c)))
              (match op with Lp.Le -> "<=" | Lp.Ge -> ">=" | Lp.Eq -> "=")
              rhs)
          p.Lp.rows))
    (String.concat " " (Array.to_list (Array.map string_of_float p.Lp.upper)))

let degenerate_lp_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make
       ~name:"revised simplex matches dense oracle on degenerate boxed LPs"
       ~count:400
       (QCheck.make ~print:print_lp_spec gen_lp_spec)
       (fun spec -> compare_backends "boxed LP" (lp_of_spec spec)))

(* A couple of pinned instances covering the interesting branches, so a
   regression reproduces without a QCheck seed. *)
let test_pinned () =
  let feasible =
    { n_arrays = 4;
      specs =
        [ { macs = 400_000; in_b = 64; out_b = 64; w_b = 40; minc = 1; dep_mask = 0 };
          { macs = 900; in_b = 64; out_b = 32; w_b = 0; minc = 1; dep_mask = 1 } ] }
  in
  Alcotest.(check bool) "feasible instance agrees" true (check feasible);
  let infeasible =
    { n_arrays = 3;
      specs =
        List.init 3 (fun i ->
            { macs = 1000; in_b = 8; out_b = 8; w_b = 8; minc = 2;
              dep_mask = (1 lsl i) - 1 }) }
  in
  let chip = chip_of infeasible in
  let ops = ops_of infeasible in
  (match Alloc.solve_outcome ~options:solver_options chip ops ~lo:0 ~hi:2 with
  | Alloc.Infeasible -> ()
  | _ -> Alcotest.fail "6 min arrays on 3 must be infeasible");
  Alcotest.(check bool) "oracle agrees it is infeasible" true
    (oracle chip ops = None)

let suite =
  ( "differential",
    [ milp_vs_oracle;
      segment_lp_differential;
      degenerate_lp_differential;
      Alcotest.test_case "pinned instances" `Quick test_pinned ] )
