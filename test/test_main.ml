let () =
  Alcotest.run "cmswitch"
    [ T_util.suite; T_obs.suite; T_shape.suite; T_tensor.suite; T_nnir.suite; T_solver.suite; T_arch.suite; T_metaop.suite; T_models.suite; T_compiler.suite; T_sim.suite; T_e2e.suite; T_extensions.suite; T_passes.suite; T_analysis.suite; T_plan.suite; T_baselines.suite; T_codegen.suite; T_fuzz_e2e.suite; T_robustness.suite; T_pool.suite; T_differential.suite; T_parallel.suite; T_config.suite; T_cache.suite; T_kernels.suite; T_dynshape.suite; T_pipeline.suite ]
