(* Tests for the fault-injection and graceful-degradation subsystem: the
   fault map, compiling around dead arrays, the MILP -> incumbent -> greedy
   -> serial fallback ladder, transient-switch retries in the machine, the
   static flow validator, and deadline-aware serving. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Mode = Cim_arch.Mode
module Faultmap = Cim_arch.Faultmap
module Flow = Cim_metaop.Flow
module Check = Cim_metaop.Check
module Alloc = Cim_compiler.Alloc
module Segment = Cim_compiler.Segment
module Degrade = Cim_compiler.Degrade
module Cmswitch = Cim_compiler.Cmswitch
module Plan = Cim_compiler.Plan
module Machine = Cim_sim.Machine
module Functional = Cim_sim.Functional
module Timing = Cim_sim.Timing
module Serving = Cim_sim.Serving
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Rng = Cim_util.Rng

let chip = Config.dynaplasia
let c x y = { Chip.x; y }

(* substring test for fault-message assertions (Str is not linked here) *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- fault map --- *)

let test_faultmap_inject () =
  let fm = Faultmap.inject chip ~seed:42 ~dead_rate:0.1 () in
  let fm' = Faultmap.inject chip ~seed:42 ~dead_rate:0.1 () in
  Alcotest.(check bool) "deterministic in the seed" true
    (Faultmap.faults fm = Faultmap.faults fm');
  let dead = chip.Chip.n_arrays - Faultmap.healthy_count fm in
  Alcotest.(check bool) "some arrays died at 10%" true (dead > 0);
  Alcotest.(check bool) "not all arrays died at 10%" true
    (dead < chip.Chip.n_arrays / 2);
  Alcotest.(check int) "dead-only: healthy = flexible"
    (Faultmap.healthy_count fm) (Faultmap.flexible_count fm);
  Alcotest.(check int) "fault count consistent" dead (Faultmap.fault_count fm);
  let eff = Faultmap.effective_chip fm in
  Alcotest.(check int) "effective capacity = flexible pool"
    (Faultmap.flexible_count fm) eff.Chip.n_arrays

let test_faultmap_states () =
  let fm =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Dead);
        (c 1 0, Faultmap.Stuck_mode Mode.Compute);
        (c 2 0, Faultmap.Transient_switch_failure 0.25) ]
  in
  Alcotest.(check bool) "dead" true (Faultmap.is_dead fm 0);
  Alcotest.(check bool) "dead unusable either way" false
    (Faultmap.usable fm 0 ~target:Mode.Memory
    || Faultmap.usable fm 0 ~target:Mode.Compute);
  Alcotest.(check bool) "stuck serves its mode" true
    (Faultmap.usable fm 1 ~target:Mode.Compute);
  Alcotest.(check bool) "stuck refuses the other mode" false
    (Faultmap.usable fm 1 ~target:Mode.Memory);
  Alcotest.(check bool) "stuck is not switchable" false (Faultmap.switchable fm 1);
  Alcotest.(check bool) "transient stays usable and switchable" true
    (Faultmap.usable fm 2 ~target:Mode.Compute && Faultmap.switchable fm 2);
  Alcotest.(check (float 1e-9)) "transient probability" 0.25
    (Faultmap.transient_prob fm 2);
  Alcotest.(check int) "flexible excludes dead and stuck"
    (chip.Chip.n_arrays - 2) (Faultmap.flexible_count fm);
  (* rates out of range / probability out of range *)
  (match Faultmap.inject chip ~seed:0 ~dead_rate:0.9 ~stuck_rate:0.9 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rates summing past 1 must be rejected");
  match Faultmap.of_list chip [ (c 0 0, Faultmap.Transient_switch_failure 1.5) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "transient probability past 1 must be rejected"

(* --- compiling around dead arrays (the tentpole acceptance case) --- *)

let dead_coords fm =
  List.filter_map
    (fun (coord, f) -> if f = Faultmap.Dead then Some coord else None)
    (Faultmap.faults fm)

let assert_no_dead_placement name fm (r : Cmswitch.result) =
  let dead = dead_coords fm in
  List.iter
    (fun (sp : Cim_compiler.Placement.seg_place) ->
      List.iter
        (fun (op : Cim_compiler.Placement.op_place) ->
          List.iter
            (fun coord ->
              if List.mem coord dead then
                Alcotest.failf "%s: dead array (%d,%d) was placed" name
                  coord.Chip.x coord.Chip.y)
            (op.Cim_compiler.Placement.compute
            @ op.Cim_compiler.Placement.mem_in
            @ op.Cim_compiler.Placement.mem_out))
        sp.Cim_compiler.Placement.ops)
    r.Cmswitch.places

(* compile with ~10% dead arrays, validate the flow, and diff the degraded
   plan's int8 execution against the float reference *)
let degraded_functional_check ?(tol = 0.05) name graph inputs =
  let fm = Faultmap.inject chip ~seed:42 ~dead_rate:0.1 () in
  let r = Cmswitch.compile ~faults:fm chip graph in
  Alcotest.(check bool) (name ^ " structurally valid") true
    (Flow.validate chip r.Cmswitch.program = Ok ());
  Alcotest.(check bool) (name ^ " passes the flow validator") true
    (Check.is_valid (Check.run chip ~faults:fm r.Cmswitch.program));
  Alcotest.(check bool) (name ^ " report says degraded") true
    (Degrade.degraded r.Cmswitch.degradation);
  Alcotest.(check int) (name ^ " healthy pool recorded")
    (Faultmap.flexible_count fm)
    r.Cmswitch.degradation.Degrade.healthy_arrays;
  Alcotest.(check bool) (name ^ " no validator diagnostics") true
    (r.Cmswitch.degradation.Degrade.diagnostics = []);
  assert_no_dead_placement name fm r;
  let rep = Functional.run chip ~faults:fm graph r.Cmswitch.program ~inputs in
  Alcotest.(check bool)
    (Printf.sprintf "%s matches reference under faults (rel err %.4f)" name
       rep.Functional.max_rel_err)
    true
    (rep.Functional.max_rel_err < tol)

let test_degraded_mlp () =
  let rng = Rng.create 31 in
  let g = Cim_models.Mlp.build ~rng ~batch:2 ~dims:[ 64; 128; 32 ] () in
  let x = Tensor.rand rng (Shape.of_list [ 2; 64 ]) ~lo:(-1.) ~hi:1. in
  degraded_functional_check "mlp" g [ ("x", x) ]

let test_degraded_cnn () =
  let rng = Rng.create 32 in
  let g = Cim_models.Cnn.tiny_cnn ~rng ~batch:2 () in
  let x = Tensor.rand rng (Shape.of_list [ 2; 2; 8; 8 ]) ~lo:(-1.) ~hi:1. in
  degraded_functional_check "tiny-cnn" g [ ("image", x) ]

let attention_graph rng ~seq ~d ~heads =
  let module B = Cim_nnir.Builder in
  let dh = d / heads in
  let b = B.create "attn" in
  let x = B.input b "x" (Shape.of_list [ seq; d ]) in
  let q = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"q" in
  let k = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"k" in
  let v = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"v" in
  let head y = B.transpose b (B.reshape b y [ seq; heads; dh ]) [ 1; 0; 2 ] in
  let q3 = head q and k3 = head k and v3 = head v in
  let scores = B.matmul b q3 (B.transpose b k3 [ 0; 2; 1 ]) in
  let ctx = B.matmul b (B.softmax b scores) v3 in
  let ctx = B.reshape b (B.transpose b ctx [ 1; 0; 2 ]) [ seq; d ] in
  let out = B.linear ~bias:false ~value_rng:rng b ctx ~in_dim:d ~out_dim:d ~prefix:"o" in
  B.finish b ~outputs:[ out ]

let test_degraded_attention () =
  let rng = Rng.create 33 in
  let g = attention_graph rng ~seq:4 ~d:8 ~heads:2 in
  let x = Tensor.rand rng (Shape.of_list [ 4; 8 ]) ~lo:(-1.) ~hi:1. in
  degraded_functional_check ~tol:0.25 "attention" g [ ("x", x) ]

let test_degraded_stuck_arrays () =
  (* stuck arrays shrink the flexible pool but stay placeable in their own
     mode; the validator must accept the result *)
  let fm =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Stuck_mode Mode.Memory);
        (c 1 0, Faultmap.Stuck_mode Mode.Compute);
        (c 2 0, Faultmap.Dead) ]
  in
  let rng = Rng.create 34 in
  let g = Cim_models.Mlp.build ~rng ~batch:1 ~dims:[ 64; 128; 32 ] () in
  let r = Cmswitch.compile ~faults:fm chip g in
  Alcotest.(check bool) "validator accepts stuck placement" true
    (Check.is_valid (Check.run chip ~faults:fm r.Cmswitch.program));
  let x = Tensor.rand rng (Shape.of_list [ 1; 64 ]) ~lo:(-1.) ~hi:1. in
  let rep = Functional.run chip ~faults:fm g r.Cmswitch.program ~inputs:[ ("x", x) ] in
  Alcotest.(check bool) "machine accepts stuck placement" true
    (rep.Functional.max_rel_err < 0.05)

(* --- degradation ladder --- *)

let mlp_graph () = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 256 ] ()
let small_mlp () = Cim_models.Mlp.build ~batch:1 ~dims:[ 64; 128; 32 ] ()

let config_with_max_nodes n = Cmswitch.Config.(with_milp_max_nodes n default)

let test_node_limit_incumbent_plan () =
  (* max_nodes = 1: the MIP truncates at the root; the pipeline must still
     produce a plan plus a non-empty degradation report, not an exception *)
  let r = Cmswitch.compile ~config:(config_with_max_nodes 1) chip (mlp_graph ()) in
  Alcotest.(check bool) "schedule produced" true
    (r.Cmswitch.schedule.Plan.total_cycles > 0.);
  Alcotest.(check bool) "degradation events recorded" true
    (r.Cmswitch.degradation.Degrade.events <> []);
  Alcotest.(check bool) "report counts as degraded" true
    (Degrade.degraded r.Cmswitch.degradation);
  List.iter
    (fun (e : Degrade.event) ->
      Alcotest.(check bool) "stage is a solver fallback" true
        (e.Degrade.stage = Degrade.Milp_incumbent
        || e.Degrade.stage = Degrade.Greedy_fallback))
    r.Cmswitch.degradation.Degrade.events

let test_zero_budget_greedy_fallback () =
  (* max_nodes = 0: the search truncates before even the root solves, so
     there is never an incumbent and every window lands on greedy *)
  let r = Cmswitch.compile ~config:(config_with_max_nodes 0) chip (mlp_graph ()) in
  Alcotest.(check bool) "schedule produced" true
    (r.Cmswitch.schedule.Plan.total_cycles > 0.);
  Alcotest.(check bool) "events recorded" true
    (r.Cmswitch.degradation.Degrade.events <> []);
  List.iter
    (fun (e : Degrade.event) ->
      Alcotest.(check bool) "pure greedy ladder" true
        (e.Degrade.stage = Degrade.Greedy_fallback))
    r.Cmswitch.degradation.Degrade.events;
  (* the degraded program must still be structurally sound *)
  Alcotest.(check bool) "flow still validates" true
    (Check.is_valid (Check.run chip r.Cmswitch.program))

let test_alloc_outcome_classification () =
  let ops =
    Cim_compiler.Opinfo.extract chip ~partition_fraction:0.5 (small_mlp ())
  in
  let hi = Array.length ops - 1 in
  (match Alloc.solve_outcome chip ops ~lo:0 ~hi with
  | Alloc.Optimal plan ->
    Alcotest.(check bool) "optimal plan honours the contract" true
      (Alloc.plan_feasible chip ops plan)
  | _ -> Alcotest.fail "default budget must prove optimality");
  match
    Alloc.solve_outcome
      ~options:
        (Cmswitch.Config.to_alloc_options
           (Cmswitch.Config.with_milp_max_nodes 0 Cmswitch.Config.default))
      chip ops ~lo:0 ~hi
  with
  | Alloc.Truncated_no_incumbent -> ()
  | Alloc.Optimal _ | Alloc.Incumbent _ -> Alcotest.fail "zero budget cannot solve"
  | Alloc.Infeasible -> Alcotest.fail "segment is feasible"

let test_degrade_solve_unit () =
  let ops =
    Cim_compiler.Opinfo.extract chip ~partition_fraction:0.5 (small_mlp ())
  in
  let hi = Array.length ops - 1 in
  let stages = ref [] in
  let plan =
    Degrade.solve
      ~options:
        (Cmswitch.Config.to_alloc_options
           (Cmswitch.Config.with_milp_max_nodes 0 Cmswitch.Config.default))
      ~on_stage:(fun e -> stages := e.Degrade.stage :: !stages)
      chip ops ~lo:0 ~hi
  in
  Alcotest.(check bool) "greedy plan returned" true (plan <> None);
  Alcotest.(check bool) "greedy stage fired" true
    (List.mem Degrade.Greedy_fallback !stages);
  (* a clean solve fires no stage events *)
  stages := [];
  ignore
    (Degrade.solve ~on_stage:(fun e -> stages := e.Degrade.stage :: !stages)
       chip ops ~lo:0 ~hi);
  Alcotest.(check bool) "optimal solve is silent" true (!stages = [])

let test_compile_robust_ok () =
  match Cmswitch.compile_robust chip (small_mlp ()) with
  | Ok r ->
    Alcotest.(check bool) "clean compile not degraded" false
      (Degrade.degraded r.Cmswitch.degradation)
  | Error _ -> Alcotest.fail "healthy compile must succeed"

let test_compile_robust_total_failure () =
  (* every array dead: nothing to compile onto; compile_robust must hand
     back a structured report instead of raising *)
  let all_dead =
    Faultmap.of_list chip
      (List.init chip.Chip.n_arrays (fun i ->
           (Chip.coord_of_index chip i, Faultmap.Dead)))
  in
  match Cmswitch.compile_robust ~faults:all_dead chip (small_mlp ()) with
  | Ok _ -> Alcotest.fail "an all-dead chip cannot compile"
  | Error report ->
    Alcotest.(check int) "no healthy arrays" 0 report.Degrade.healthy_arrays;
    Alcotest.(check bool) "diagnostics explain the failure" true
      (report.Degrade.diagnostics <> [])

(* --- machine under faults --- *)

let test_machine_dead_and_stuck_messages () =
  let fm =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Dead); (c 1 0, Faultmap.Stuck_mode Mode.Memory) ]
  in
  let m = Machine.create chip ~faults:fm () in
  (match Machine.switch m Mode.To_compute (c 0 0) with
  | exception Machine.Fault msg ->
    Alcotest.(check bool) "dead message names coordinate and state" true
      (contains msg "(0,0)" && contains msg "dead")
  | () -> Alcotest.fail "switching a dead array must fault");
  (match Machine.switch m Mode.To_compute (c 1 0) with
  | exception Machine.Fault msg ->
    Alcotest.(check bool)
      "stuck message names coordinate, stuck mode and attempted transition"
      true
      (contains msg "(1,0)" && contains msg "stuck" && contains msg "memory"
      && contains msg "compute")
  | () -> Alcotest.fail "switching a stuck array must fault");
  match Machine.switch m Mode.To_memory (c 2 0) with
  | exception Machine.Fault msg ->
    Alcotest.(check bool) "redundant message names mode and transition" true
      (contains msg "(2,0)" && contains msg "already" && contains msg "memory")
  | () -> Alcotest.fail "redundant switch must fault"

let test_machine_transient_retries () =
  let coords = List.init 20 (Chip.coord_of_index chip) in
  let fm =
    Faultmap.of_list chip
      (List.map (fun co -> (co, Faultmap.Transient_switch_failure 0.5)) coords)
  in
  let m =
    Machine.create chip ~faults:fm ~rng:(Rng.create 7) ~max_switch_retries:100 ()
  in
  List.iter (Machine.switch m Mode.To_compute) coords;
  List.iter
    (fun co ->
      Alcotest.(check bool) "switched despite transient failures" true
        (Machine.mode m co = Mode.Compute))
    coords;
  Alcotest.(check bool) "failed attempts were counted" true
    (Machine.switch_retries m > 0);
  (* a zero-retry budget on a high-failure array eventually faults *)
  let fm1 = Faultmap.of_list chip [ (c 0 0, Faultmap.Transient_switch_failure 0.9) ] in
  let attempts_that_fault =
    let found = ref false in
    for seed = 0 to 9 do
      if not !found then begin
        let m1 =
          Machine.create chip ~faults:fm1 ~rng:(Rng.create seed)
            ~max_switch_retries:0 ()
        in
        match Machine.switch m1 Mode.To_compute (c 0 0) with
        | exception Machine.Fault _ -> found := true
        | () -> ()
      end
    done;
    !found
  in
  Alcotest.(check bool) "retry budget exhaustion faults" true attempts_that_fault

let test_timing_charges_retries () =
  let coords = List.init 20 (Chip.coord_of_index chip) in
  let fm =
    Faultmap.of_list chip
      (List.map (fun co -> (co, Faultmap.Transient_switch_failure 0.5)) coords)
  in
  let p =
    { Flow.source = "retries";
      instrs = [ Flow.Switch { target = Mode.To_compute; arrays = coords } ] }
  in
  let clean = Timing.run chip p in
  let faulty = Timing.run chip ~faults:fm ~rng:(Rng.create 7) ~max_switch_retries:100 p in
  Alcotest.(check int) "clean run retries nothing" 0 clean.Timing.switch_retries;
  Alcotest.(check bool) "retries counted" true (faulty.Timing.switch_retries > 0);
  Alcotest.(check bool) "retries cost cycles" true
    (faulty.Timing.cycles.Timing.switch > clean.Timing.cycles.Timing.switch)

(* --- static flow validator --- *)

let test_check_catches_missing_weights () =
  let p =
    { Flow.source = "bad";
      instrs =
        [ Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
          Flow.Compute
            { label = "m"; node_id = 0; arrays = [ c 0 0 ]; mem_arrays = [];
              inputs = [ "x" ]; output = "y"; slice = { Flow.lo = 0; hi = 4 };
              macs = 16.; ai = 1. } ] }
  in
  let ds = Check.run chip p in
  Alcotest.(check bool) "weight residency violation found" false (Check.is_valid ds)

let test_check_catches_mode_misuse () =
  let p =
    { Flow.source = "bad";
      instrs =
        [ Flow.Compute
            { label = "m"; node_id = 0; arrays = [ c 0 0 ]; mem_arrays = [];
              inputs = [ "x" ]; output = "y"; slice = { Flow.lo = 0; hi = 4 };
              macs = 16.; ai = 1. } ] }
  in
  Alcotest.(check bool) "compute in memory mode rejected" false
    (Check.is_valid (Check.run chip p));
  let p2 =
    { Flow.source = "bad2";
      instrs =
        [ Flow.Load
            { tensor = "t"; src = Flow.Main_memory; dst = Flow.Mem_arrays [ c 0 0 ];
              bytes = 64 };
          Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
          Flow.Store
            { tensor = "t"; src = Flow.Mem_arrays [ c 0 0 ]; dst = Flow.Main_memory;
              bytes = 64 } ] }
  in
  Alcotest.(check bool) "store from compute-mode array rejected" false
    (Check.is_valid (Check.run chip p2))

let test_check_catches_use_before_def () =
  let p =
    { Flow.source = "bad";
      instrs =
        [ Flow.Vector_op { label = "v"; node_id = 1; inputs = [ "y" ]; output = "z" };
          Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
          Flow.Write_weights
            { label = "m"; node_id = 0; arrays = [ c 0 0 ];
              slice = { Flow.lo = 0; hi = 4 }; bytes = 64; in_place = false };
          Flow.Compute
            { label = "m"; node_id = 0; arrays = [ c 0 0 ]; mem_arrays = [];
              inputs = [ "x" ]; output = "y"; slice = { Flow.lo = 0; hi = 4 };
              macs = 16.; ai = 1. } ] }
  in
  let ds = Check.run chip p in
  Alcotest.(check bool) "use before def rejected" false (Check.is_valid ds);
  (* the same program with the vector op after the compute is clean *)
  let good = { p with Flow.instrs = List.tl p.Flow.instrs @ [ List.hd p.Flow.instrs ] } in
  Alcotest.(check bool) "reordered program clean" true
    (Check.is_valid (Check.run chip good))

let test_check_faults () =
  let fm =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Dead); (c 1 0, Faultmap.Stuck_mode Mode.Memory) ]
  in
  let switch_dead =
    { Flow.source = "dead";
      instrs = [ Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] } ] }
  in
  Alcotest.(check bool) "dead array use rejected" false
    (Check.is_valid (Check.run chip ~faults:fm switch_dead));
  let switch_stuck =
    { Flow.source = "stuck";
      instrs = [ Flow.Switch { target = Mode.To_compute; arrays = [ c 1 0 ] } ] }
  in
  Alcotest.(check bool) "stuck array switch rejected" false
    (Check.is_valid (Check.run chip ~faults:fm switch_stuck))

(* --- serving under deadlines --- *)

let profile =
  { Serving.prefill_cycles = (fun _ -> 10.); decode_cycles = (fun _ -> 1.) }

let test_serving_empty_trace () =
  let s = Serving.run profile [] in
  Alcotest.(check int) "nothing completed" 0 s.Serving.completed;
  Alcotest.(check int) "nothing dropped" 0 s.Serving.dropped;
  Alcotest.(check (float 0.)) "zero makespan" 0. s.Serving.makespan;
  Alcotest.(check (float 0.)) "zero p95" 0. s.Serving.p95_latency

let test_serving_deadline_drops () =
  let trace =
    [ { Serving.arrival = 0.; prompt = 4; output = 5 };
      { Serving.arrival = 0.; prompt = 4; output = 5 } ]
  in
  (* each request costs 15 cycles; FCFS queues the second to finish at 30 *)
  let s = Serving.run ~deadline:20. profile trace in
  Alcotest.(check int) "first completes" 1 s.Serving.completed;
  Alcotest.(check int) "queued one dropped" 1 s.Serving.dropped;
  Alcotest.(check (float 1e-9)) "drop frees the chip" 15. s.Serving.makespan;
  (* with a generous deadline both complete *)
  let s2 = Serving.run ~deadline:100. profile trace in
  Alcotest.(check int) "no drops under slack" 2 s2.Serving.completed;
  Alcotest.(check int) "dropped zero" 0 s2.Serving.dropped;
  (* dropping everything still returns zeroed stats, not an exception *)
  let s3 = Serving.run ~deadline:1. profile trace in
  Alcotest.(check int) "all dropped" 2 s3.Serving.dropped;
  Alcotest.(check int) "none completed" 0 s3.Serving.completed;
  Alcotest.(check (float 0.)) "stats zeroed" 0. s3.Serving.mean_latency

let test_serving_small_trace_p95 () =
  (* latencies 11, 12, 13: nearest-rank p95 on 3 samples is the maximum,
     not an interpolated blend of the two slowest *)
  let trace =
    [ { Serving.arrival = 0.; prompt = 4; output = 1 };
      { Serving.arrival = 100.; prompt = 4; output = 2 };
      { Serving.arrival = 200.; prompt = 4; output = 3 } ]
  in
  let s = Serving.run profile trace in
  Alcotest.(check (float 1e-9)) "p95 is the worst observation" 13.
    s.Serving.p95_latency;
  Alcotest.(check int) "all completed" 3 s.Serving.completed

let suite =
  ( "robustness",
    [
      Alcotest.test_case "faultmap injection" `Quick test_faultmap_inject;
      Alcotest.test_case "faultmap states" `Quick test_faultmap_states;
      Alcotest.test_case "degraded compile: mlp" `Quick test_degraded_mlp;
      Alcotest.test_case "degraded compile: cnn" `Quick test_degraded_cnn;
      Alcotest.test_case "degraded compile: attention" `Quick test_degraded_attention;
      Alcotest.test_case "degraded compile: stuck arrays" `Quick
        test_degraded_stuck_arrays;
      Alcotest.test_case "node-limited MILP still plans" `Quick
        test_node_limit_incumbent_plan;
      Alcotest.test_case "zero budget falls to greedy" `Quick
        test_zero_budget_greedy_fallback;
      Alcotest.test_case "alloc outcome classification" `Quick
        test_alloc_outcome_classification;
      Alcotest.test_case "degrade ladder unit" `Quick test_degrade_solve_unit;
      Alcotest.test_case "compile_robust: healthy" `Quick test_compile_robust_ok;
      Alcotest.test_case "compile_robust: total failure" `Quick
        test_compile_robust_total_failure;
      Alcotest.test_case "machine fault messages" `Quick
        test_machine_dead_and_stuck_messages;
      Alcotest.test_case "machine transient retries" `Quick
        test_machine_transient_retries;
      Alcotest.test_case "timing charges retries" `Quick test_timing_charges_retries;
      Alcotest.test_case "check: missing weights" `Quick
        test_check_catches_missing_weights;
      Alcotest.test_case "check: mode misuse" `Quick test_check_catches_mode_misuse;
      Alcotest.test_case "check: use before def" `Quick
        test_check_catches_use_before_def;
      Alcotest.test_case "check: fault awareness" `Quick test_check_faults;
      Alcotest.test_case "serving: empty trace" `Quick test_serving_empty_trace;
      Alcotest.test_case "serving: deadline drops" `Quick test_serving_deadline_drops;
      Alcotest.test_case "serving: small-trace p95" `Quick
        test_serving_small_trace_p95;
    ] )
