(* Tests for the fault-injection and graceful-degradation subsystem: the
   fault map, compiling around dead arrays, the MILP -> incumbent -> greedy
   -> serial fallback ladder, transient-switch retries in the machine, the
   static flow validator, and deadline-aware serving. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Mode = Cim_arch.Mode
module Faultmap = Cim_arch.Faultmap
module Flow = Cim_metaop.Flow
module Check = Cim_metaop.Check
module Alloc = Cim_compiler.Alloc
module Segment = Cim_compiler.Segment
module Degrade = Cim_compiler.Degrade
module Cmswitch = Cim_compiler.Cmswitch
module Plan = Cim_compiler.Plan
module Machine = Cim_sim.Machine
module Functional = Cim_sim.Functional
module Timing = Cim_sim.Timing
module Serving = Cim_sim.Serving
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Rng = Cim_util.Rng

let chip = Config.dynaplasia
let c x y = { Chip.x; y }

(* substring test for fault-message assertions (Str is not linked here) *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- fault map --- *)

let test_faultmap_inject () =
  let fm = Faultmap.inject chip ~seed:42 ~dead_rate:0.1 () in
  let fm' = Faultmap.inject chip ~seed:42 ~dead_rate:0.1 () in
  Alcotest.(check bool) "deterministic in the seed" true
    (Faultmap.faults fm = Faultmap.faults fm');
  let dead = chip.Chip.n_arrays - Faultmap.healthy_count fm in
  Alcotest.(check bool) "some arrays died at 10%" true (dead > 0);
  Alcotest.(check bool) "not all arrays died at 10%" true
    (dead < chip.Chip.n_arrays / 2);
  Alcotest.(check int) "dead-only: healthy = flexible"
    (Faultmap.healthy_count fm) (Faultmap.flexible_count fm);
  Alcotest.(check int) "fault count consistent" dead (Faultmap.fault_count fm);
  let eff = Faultmap.effective_chip fm in
  Alcotest.(check int) "effective capacity = flexible pool"
    (Faultmap.flexible_count fm) eff.Chip.n_arrays

let test_faultmap_states () =
  let fm =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Dead);
        (c 1 0, Faultmap.Stuck_mode Mode.Compute);
        (c 2 0, Faultmap.Transient_switch_failure 0.25) ]
  in
  Alcotest.(check bool) "dead" true (Faultmap.is_dead fm 0);
  Alcotest.(check bool) "dead unusable either way" false
    (Faultmap.usable fm 0 ~target:Mode.Memory
    || Faultmap.usable fm 0 ~target:Mode.Compute);
  Alcotest.(check bool) "stuck serves its mode" true
    (Faultmap.usable fm 1 ~target:Mode.Compute);
  Alcotest.(check bool) "stuck refuses the other mode" false
    (Faultmap.usable fm 1 ~target:Mode.Memory);
  Alcotest.(check bool) "stuck is not switchable" false (Faultmap.switchable fm 1);
  Alcotest.(check bool) "transient stays usable and switchable" true
    (Faultmap.usable fm 2 ~target:Mode.Compute && Faultmap.switchable fm 2);
  Alcotest.(check (float 1e-9)) "transient probability" 0.25
    (Faultmap.transient_prob fm 2);
  Alcotest.(check int) "flexible excludes dead and stuck"
    (chip.Chip.n_arrays - 2) (Faultmap.flexible_count fm);
  (* rates out of range / probability out of range *)
  (match Faultmap.inject chip ~seed:0 ~dead_rate:0.9 ~stuck_rate:0.9 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "rates summing past 1 must be rejected");
  match Faultmap.of_list chip [ (c 0 0, Faultmap.Transient_switch_failure 1.5) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "transient probability past 1 must be rejected"

(* --- compiling around dead arrays (the tentpole acceptance case) --- *)

let dead_coords fm =
  List.filter_map
    (fun (coord, f) -> if f = Faultmap.Dead then Some coord else None)
    (Faultmap.faults fm)

let assert_no_dead_placement name fm (r : Cmswitch.result) =
  let dead = dead_coords fm in
  List.iter
    (fun (sp : Cim_compiler.Placement.seg_place) ->
      List.iter
        (fun (op : Cim_compiler.Placement.op_place) ->
          List.iter
            (fun coord ->
              if List.mem coord dead then
                Alcotest.failf "%s: dead array (%d,%d) was placed" name
                  coord.Chip.x coord.Chip.y)
            (op.Cim_compiler.Placement.compute
            @ op.Cim_compiler.Placement.mem_in
            @ op.Cim_compiler.Placement.mem_out))
        sp.Cim_compiler.Placement.ops)
    r.Cmswitch.places

(* compile with ~10% dead arrays, validate the flow, and diff the degraded
   plan's int8 execution against the float reference *)
let degraded_functional_check ?(tol = 0.05) name graph inputs =
  let fm = Faultmap.inject chip ~seed:42 ~dead_rate:0.1 () in
  let r = Cmswitch.compile ~faults:fm chip graph in
  Alcotest.(check bool) (name ^ " structurally valid") true
    (Flow.validate chip r.Cmswitch.program = Ok ());
  Alcotest.(check bool) (name ^ " passes the flow validator") true
    (Check.is_valid (Check.run chip ~faults:fm r.Cmswitch.program));
  Alcotest.(check bool) (name ^ " report says degraded") true
    (Degrade.degraded r.Cmswitch.degradation);
  Alcotest.(check int) (name ^ " healthy pool recorded")
    (Faultmap.flexible_count fm)
    r.Cmswitch.degradation.Degrade.healthy_arrays;
  Alcotest.(check bool) (name ^ " no validator diagnostics") true
    (r.Cmswitch.degradation.Degrade.diagnostics = []);
  assert_no_dead_placement name fm r;
  let rep = Functional.run chip ~faults:fm graph r.Cmswitch.program ~inputs in
  Alcotest.(check bool)
    (Printf.sprintf "%s matches reference under faults (rel err %.4f)" name
       rep.Functional.max_rel_err)
    true
    (rep.Functional.max_rel_err < tol)

let test_degraded_mlp () =
  let rng = Rng.create 31 in
  let g = Cim_models.Mlp.build ~rng ~batch:2 ~dims:[ 64; 128; 32 ] () in
  let x = Tensor.rand rng (Shape.of_list [ 2; 64 ]) ~lo:(-1.) ~hi:1. in
  degraded_functional_check "mlp" g [ ("x", x) ]

let test_degraded_cnn () =
  let rng = Rng.create 32 in
  let g = Cim_models.Cnn.tiny_cnn ~rng ~batch:2 () in
  let x = Tensor.rand rng (Shape.of_list [ 2; 2; 8; 8 ]) ~lo:(-1.) ~hi:1. in
  degraded_functional_check "tiny-cnn" g [ ("image", x) ]

let attention_graph rng ~seq ~d ~heads =
  let module B = Cim_nnir.Builder in
  let dh = d / heads in
  let b = B.create "attn" in
  let x = B.input b "x" (Shape.of_list [ seq; d ]) in
  let q = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"q" in
  let k = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"k" in
  let v = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"v" in
  let head y = B.transpose b (B.reshape b y [ seq; heads; dh ]) [ 1; 0; 2 ] in
  let q3 = head q and k3 = head k and v3 = head v in
  let scores = B.matmul b q3 (B.transpose b k3 [ 0; 2; 1 ]) in
  let ctx = B.matmul b (B.softmax b scores) v3 in
  let ctx = B.reshape b (B.transpose b ctx [ 1; 0; 2 ]) [ seq; d ] in
  let out = B.linear ~bias:false ~value_rng:rng b ctx ~in_dim:d ~out_dim:d ~prefix:"o" in
  B.finish b ~outputs:[ out ]

let test_degraded_attention () =
  let rng = Rng.create 33 in
  let g = attention_graph rng ~seq:4 ~d:8 ~heads:2 in
  let x = Tensor.rand rng (Shape.of_list [ 4; 8 ]) ~lo:(-1.) ~hi:1. in
  degraded_functional_check ~tol:0.25 "attention" g [ ("x", x) ]

let test_degraded_stuck_arrays () =
  (* stuck arrays shrink the flexible pool but stay placeable in their own
     mode; the validator must accept the result *)
  let fm =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Stuck_mode Mode.Memory);
        (c 1 0, Faultmap.Stuck_mode Mode.Compute);
        (c 2 0, Faultmap.Dead) ]
  in
  let rng = Rng.create 34 in
  let g = Cim_models.Mlp.build ~rng ~batch:1 ~dims:[ 64; 128; 32 ] () in
  let r = Cmswitch.compile ~faults:fm chip g in
  Alcotest.(check bool) "validator accepts stuck placement" true
    (Check.is_valid (Check.run chip ~faults:fm r.Cmswitch.program));
  let x = Tensor.rand rng (Shape.of_list [ 1; 64 ]) ~lo:(-1.) ~hi:1. in
  let rep = Functional.run chip ~faults:fm g r.Cmswitch.program ~inputs:[ ("x", x) ] in
  Alcotest.(check bool) "machine accepts stuck placement" true
    (rep.Functional.max_rel_err < 0.05)

(* --- degradation ladder --- *)

let mlp_graph () = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 256 ] ()
let small_mlp () = Cim_models.Mlp.build ~batch:1 ~dims:[ 64; 128; 32 ] ()

let config_with_max_nodes n = Cmswitch.Config.(with_milp_max_nodes n default)

let test_node_limit_incumbent_plan () =
  (* max_nodes = 1: the MIP truncates at the root; the pipeline must still
     produce a plan plus a non-empty degradation report, not an exception *)
  let r = Cmswitch.compile ~config:(config_with_max_nodes 1) chip (mlp_graph ()) in
  Alcotest.(check bool) "schedule produced" true
    (r.Cmswitch.schedule.Plan.total_cycles > 0.);
  Alcotest.(check bool) "degradation events recorded" true
    (r.Cmswitch.degradation.Degrade.events <> []);
  Alcotest.(check bool) "report counts as degraded" true
    (Degrade.degraded r.Cmswitch.degradation);
  List.iter
    (fun (e : Degrade.event) ->
      Alcotest.(check bool) "stage is a solver fallback" true
        (e.Degrade.stage = Degrade.Milp_incumbent
        || e.Degrade.stage = Degrade.Greedy_fallback))
    r.Cmswitch.degradation.Degrade.events

let test_zero_budget_greedy_fallback () =
  (* max_nodes = 0: the search truncates before even the root solves, so
     there is never an incumbent and every window lands on greedy *)
  let r = Cmswitch.compile ~config:(config_with_max_nodes 0) chip (mlp_graph ()) in
  Alcotest.(check bool) "schedule produced" true
    (r.Cmswitch.schedule.Plan.total_cycles > 0.);
  Alcotest.(check bool) "events recorded" true
    (r.Cmswitch.degradation.Degrade.events <> []);
  List.iter
    (fun (e : Degrade.event) ->
      Alcotest.(check bool) "pure greedy ladder" true
        (e.Degrade.stage = Degrade.Greedy_fallback))
    r.Cmswitch.degradation.Degrade.events;
  (* the degraded program must still be structurally sound *)
  Alcotest.(check bool) "flow still validates" true
    (Check.is_valid (Check.run chip r.Cmswitch.program))

let test_alloc_outcome_classification () =
  let ops =
    Cim_compiler.Opinfo.extract chip ~partition_fraction:0.5 (small_mlp ())
  in
  let hi = Array.length ops - 1 in
  (match Alloc.solve_outcome chip ops ~lo:0 ~hi with
  | Alloc.Optimal plan ->
    Alcotest.(check bool) "optimal plan honours the contract" true
      (Alloc.plan_feasible chip ops plan)
  | _ -> Alcotest.fail "default budget must prove optimality");
  match
    Alloc.solve_outcome
      ~options:
        (Cmswitch.Config.to_alloc_options
           (Cmswitch.Config.with_milp_max_nodes 0 Cmswitch.Config.default))
      chip ops ~lo:0 ~hi
  with
  | Alloc.Truncated_no_incumbent -> ()
  | Alloc.Optimal _ | Alloc.Incumbent _ -> Alcotest.fail "zero budget cannot solve"
  | Alloc.Infeasible -> Alcotest.fail "segment is feasible"

let test_degrade_solve_unit () =
  let ops =
    Cim_compiler.Opinfo.extract chip ~partition_fraction:0.5 (small_mlp ())
  in
  let hi = Array.length ops - 1 in
  let stages = ref [] in
  let plan =
    Degrade.solve
      ~options:
        (Cmswitch.Config.to_alloc_options
           (Cmswitch.Config.with_milp_max_nodes 0 Cmswitch.Config.default))
      ~on_stage:(fun e -> stages := e.Degrade.stage :: !stages)
      chip ops ~lo:0 ~hi
  in
  Alcotest.(check bool) "greedy plan returned" true (plan <> None);
  Alcotest.(check bool) "greedy stage fired" true
    (List.mem Degrade.Greedy_fallback !stages);
  (* a clean solve fires no stage events *)
  stages := [];
  ignore
    (Degrade.solve ~on_stage:(fun e -> stages := e.Degrade.stage :: !stages)
       chip ops ~lo:0 ~hi);
  Alcotest.(check bool) "optimal solve is silent" true (!stages = [])

let test_compile_robust_ok () =
  match Cmswitch.compile_robust chip (small_mlp ()) with
  | Ok r ->
    Alcotest.(check bool) "clean compile not degraded" false
      (Degrade.degraded r.Cmswitch.degradation)
  | Error _ -> Alcotest.fail "healthy compile must succeed"

let test_compile_robust_total_failure () =
  (* every array dead: nothing to compile onto; compile_robust must hand
     back a structured report instead of raising *)
  let all_dead =
    Faultmap.of_list chip
      (List.init chip.Chip.n_arrays (fun i ->
           (Chip.coord_of_index chip i, Faultmap.Dead)))
  in
  match Cmswitch.compile_robust ~faults:all_dead chip (small_mlp ()) with
  | Ok _ -> Alcotest.fail "an all-dead chip cannot compile"
  | Error report ->
    Alcotest.(check int) "no healthy arrays" 0 report.Degrade.healthy_arrays;
    Alcotest.(check bool) "diagnostics explain the failure" true
      (report.Degrade.diagnostics <> [])

(* --- machine under faults --- *)

let test_machine_dead_and_stuck_messages () =
  let fm =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Dead); (c 1 0, Faultmap.Stuck_mode Mode.Memory) ]
  in
  let m = Machine.create chip ~faults:fm () in
  (match Machine.switch m Mode.To_compute (c 0 0) with
  | exception Machine.Fault msg ->
    Alcotest.(check bool) "dead message names coordinate and state" true
      (contains msg "(0,0)" && contains msg "dead")
  | () -> Alcotest.fail "switching a dead array must fault");
  (match Machine.switch m Mode.To_compute (c 1 0) with
  | exception Machine.Fault msg ->
    Alcotest.(check bool)
      "stuck message names coordinate, stuck mode and attempted transition"
      true
      (contains msg "(1,0)" && contains msg "stuck" && contains msg "memory"
      && contains msg "compute")
  | () -> Alcotest.fail "switching a stuck array must fault");
  match Machine.switch m Mode.To_memory (c 2 0) with
  | exception Machine.Fault msg ->
    Alcotest.(check bool) "redundant message names mode and transition" true
      (contains msg "(2,0)" && contains msg "already" && contains msg "memory")
  | () -> Alcotest.fail "redundant switch must fault"

let test_machine_transient_retries () =
  let coords = List.init 20 (Chip.coord_of_index chip) in
  let fm =
    Faultmap.of_list chip
      (List.map (fun co -> (co, Faultmap.Transient_switch_failure 0.5)) coords)
  in
  let m =
    Machine.create chip ~faults:fm ~rng:(Rng.create 7) ~max_switch_retries:100 ()
  in
  List.iter (Machine.switch m Mode.To_compute) coords;
  List.iter
    (fun co ->
      Alcotest.(check bool) "switched despite transient failures" true
        (Machine.mode m co = Mode.Compute))
    coords;
  Alcotest.(check bool) "failed attempts were counted" true
    (Machine.switch_retries m > 0);
  (* a zero-retry budget on a high-failure array eventually faults *)
  let fm1 = Faultmap.of_list chip [ (c 0 0, Faultmap.Transient_switch_failure 0.9) ] in
  let attempts_that_fault =
    let found = ref false in
    for seed = 0 to 9 do
      if not !found then begin
        let m1 =
          Machine.create chip ~faults:fm1 ~rng:(Rng.create seed)
            ~max_switch_retries:0 ()
        in
        match Machine.switch m1 Mode.To_compute (c 0 0) with
        | exception Machine.Fault _ -> found := true
        | () -> ()
      end
    done;
    !found
  in
  Alcotest.(check bool) "retry budget exhaustion faults" true attempts_that_fault

let test_timing_charges_retries () =
  let coords = List.init 20 (Chip.coord_of_index chip) in
  let fm =
    Faultmap.of_list chip
      (List.map (fun co -> (co, Faultmap.Transient_switch_failure 0.5)) coords)
  in
  let p =
    { Flow.source = "retries";
      instrs = [ Flow.Switch { target = Mode.To_compute; arrays = coords } ] }
  in
  let clean = Timing.run chip p in
  let faulty = Timing.run chip ~faults:fm ~rng:(Rng.create 7) ~max_switch_retries:100 p in
  Alcotest.(check int) "clean run retries nothing" 0 clean.Timing.switch_retries;
  Alcotest.(check bool) "retries counted" true (faulty.Timing.switch_retries > 0);
  Alcotest.(check bool) "retries cost cycles" true
    (faulty.Timing.cycles.Timing.switch > clean.Timing.cycles.Timing.switch)

(* --- static flow validator --- *)

let test_check_catches_missing_weights () =
  let p =
    { Flow.source = "bad";
      instrs =
        [ Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
          Flow.Compute
            { label = "m"; node_id = 0; arrays = [ c 0 0 ]; mem_arrays = [];
              inputs = [ "x" ]; output = "y"; slice = { Flow.lo = 0; hi = 4 };
              macs = 16.; ai = 1. } ] }
  in
  let ds = Check.run chip p in
  Alcotest.(check bool) "weight residency violation found" false (Check.is_valid ds)

let test_check_catches_mode_misuse () =
  let p =
    { Flow.source = "bad";
      instrs =
        [ Flow.Compute
            { label = "m"; node_id = 0; arrays = [ c 0 0 ]; mem_arrays = [];
              inputs = [ "x" ]; output = "y"; slice = { Flow.lo = 0; hi = 4 };
              macs = 16.; ai = 1. } ] }
  in
  Alcotest.(check bool) "compute in memory mode rejected" false
    (Check.is_valid (Check.run chip p));
  let p2 =
    { Flow.source = "bad2";
      instrs =
        [ Flow.Load
            { tensor = "t"; src = Flow.Main_memory; dst = Flow.Mem_arrays [ c 0 0 ];
              bytes = 64 };
          Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
          Flow.Store
            { tensor = "t"; src = Flow.Mem_arrays [ c 0 0 ]; dst = Flow.Main_memory;
              bytes = 64 } ] }
  in
  Alcotest.(check bool) "store from compute-mode array rejected" false
    (Check.is_valid (Check.run chip p2))

let test_check_catches_use_before_def () =
  let p =
    { Flow.source = "bad";
      instrs =
        [ Flow.Vector_op { label = "v"; node_id = 1; inputs = [ "y" ]; output = "z" };
          Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
          Flow.Write_weights
            { label = "m"; node_id = 0; arrays = [ c 0 0 ];
              slice = { Flow.lo = 0; hi = 4 }; bytes = 64; in_place = false };
          Flow.Compute
            { label = "m"; node_id = 0; arrays = [ c 0 0 ]; mem_arrays = [];
              inputs = [ "x" ]; output = "y"; slice = { Flow.lo = 0; hi = 4 };
              macs = 16.; ai = 1. } ] }
  in
  let ds = Check.run chip p in
  Alcotest.(check bool) "use before def rejected" false (Check.is_valid ds);
  (* the same program with the vector op after the compute is clean *)
  let good = { p with Flow.instrs = List.tl p.Flow.instrs @ [ List.hd p.Flow.instrs ] } in
  Alcotest.(check bool) "reordered program clean" true
    (Check.is_valid (Check.run chip good))

let test_check_faults () =
  let fm =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Dead); (c 1 0, Faultmap.Stuck_mode Mode.Memory) ]
  in
  let switch_dead =
    { Flow.source = "dead";
      instrs = [ Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] } ] }
  in
  Alcotest.(check bool) "dead array use rejected" false
    (Check.is_valid (Check.run chip ~faults:fm switch_dead));
  let switch_stuck =
    { Flow.source = "stuck";
      instrs = [ Flow.Switch { target = Mode.To_compute; arrays = [ c 1 0 ] } ] }
  in
  Alcotest.(check bool) "stuck array switch rejected" false
    (Check.is_valid (Check.run chip ~faults:fm switch_stuck))

(* --- serving under deadlines --- *)

let profile =
  { Serving.prefill_cycles = (fun _ -> 10.); decode_cycles = (fun _ -> 1.) }

let test_serving_empty_trace () =
  let s = Serving.run profile [] in
  Alcotest.(check int) "nothing completed" 0 s.Serving.completed;
  Alcotest.(check int) "nothing dropped" 0 s.Serving.dropped;
  Alcotest.(check (float 0.)) "zero makespan" 0. s.Serving.makespan;
  Alcotest.(check (float 0.)) "zero p95" 0. s.Serving.p95_latency

let test_serving_deadline_drops () =
  let trace =
    [ { Serving.arrival = 0.; prompt = 4; output = 5 };
      { Serving.arrival = 0.; prompt = 4; output = 5 } ]
  in
  (* each request costs 15 cycles; FCFS queues the second to finish at 30 *)
  let s = Serving.run ~deadline:20. profile trace in
  Alcotest.(check int) "first completes" 1 s.Serving.completed;
  Alcotest.(check int) "queued one dropped" 1 s.Serving.dropped;
  Alcotest.(check (float 1e-9)) "drop frees the chip" 15. s.Serving.makespan;
  (* with a generous deadline both complete *)
  let s2 = Serving.run ~deadline:100. profile trace in
  Alcotest.(check int) "no drops under slack" 2 s2.Serving.completed;
  Alcotest.(check int) "dropped zero" 0 s2.Serving.dropped;
  (* dropping everything still returns zeroed stats, not an exception *)
  let s3 = Serving.run ~deadline:1. profile trace in
  Alcotest.(check int) "all dropped" 2 s3.Serving.dropped;
  Alcotest.(check int) "none completed" 0 s3.Serving.completed;
  Alcotest.(check (float 0.)) "stats zeroed" 0. s3.Serving.mean_latency

let test_serving_small_trace_p95 () =
  (* latencies 11, 12, 13: nearest-rank p95 on 3 samples is the maximum,
     not an interpolated blend of the two slowest *)
  let trace =
    [ { Serving.arrival = 0.; prompt = 4; output = 1 };
      { Serving.arrival = 100.; prompt = 4; output = 2 };
      { Serving.arrival = 200.; prompt = 4; output = 3 } ]
  in
  let s = Serving.run profile trace in
  Alcotest.(check (float 1e-9)) "p95 is the worst observation" 13.
    s.Serving.p95_latency;
  Alcotest.(check int) "all completed" 3 s.Serving.completed

(* --- satellite regressions: interpolate, transient band, apply/diff --- *)

let test_interpolate_dup_x () =
  (* duplicate-x samples must dedupe by key (last wins), never produce a
     zero-width bracket *)
  let f = Serving.interpolate [ (5, 1.); (5, 2.); (10, 4.) ] in
  Alcotest.(check (float 1e-9)) "last sample wins at the duplicate" 2. (f 5);
  let mid = f 7 in
  Alcotest.(check bool) "finite between samples" true (Float.is_finite mid);
  Alcotest.(check (float 1e-9)) "interpolates from the kept sample" 2.8 mid;
  Alcotest.(check (float 1e-9)) "constant extrapolation below" 2. (f 0);
  Alcotest.(check (float 1e-9)) "constant extrapolation above" 4. (f 99)

let test_inject_transient_band () =
  let fm =
    Faultmap.inject chip ~seed:1 ~transient_rate:1.0 ~transient_band:(0.2, 0.2)
      ()
  in
  for i = 0 to chip.Chip.n_arrays - 1 do
    Alcotest.(check (float 1e-9)) "lo = hi pins the probability" 0.2
      (Faultmap.transient_prob fm i)
  done;
  let default_band = Faultmap.inject chip ~seed:9 ~transient_rate:1.0 () in
  let explicit_default =
    Faultmap.inject chip ~seed:9 ~transient_rate:1.0
      ~transient_band:(0.05, 0.5) ()
  in
  Alcotest.(check bool) "default band is (0.05, 0.5), same seed stream" true
    (Faultmap.faults default_band = Faultmap.faults explicit_default);
  let invalid band =
    match
      Faultmap.inject chip ~seed:1 ~transient_rate:0.5 ~transient_band:band ()
    with
    | _ -> false
    | exception Invalid_argument msg -> contains msg "transient band"
  in
  Alcotest.(check bool) "hi < lo rejected" true (invalid (0.4, 0.2));
  Alcotest.(check bool) "hi = 1 rejected" true (invalid (0.5, 1.0));
  Alcotest.(check bool) "negative lo rejected" true (invalid (-0.1, 0.5))

let test_faultmap_apply_diff () =
  let before =
    Faultmap.of_list chip
      [ (c 0 0, Faultmap.Dead); (c 1 0, Faultmap.Stuck_mode Mode.Memory) ]
  in
  let after =
    Faultmap.apply before
      [ (c 0 0, None) (* repaired *);
        (c 2 0, Some (Faultmap.Transient_switch_failure 0.3));
        (c 1 0, Some Faultmap.Dead) ]
  in
  Alcotest.(check bool) "apply is functional: input unchanged" true
    (Faultmap.fault before (c 0 0) = Some Faultmap.Dead);
  Alcotest.(check bool) "None clears the fault" true
    (Faultmap.fault after (c 0 0) = None);
  Alcotest.(check bool) "update landed" true
    (Faultmap.fault after (c 1 0) = Some Faultmap.Dead);
  let d = Faultmap.diff before after in
  Alcotest.(check int) "three coordinates changed" 3 (List.length d);
  Alcotest.(check bool) "apply before (diff before after) = after" true
    (Faultmap.diff (Faultmap.apply before d) after = []);
  Alcotest.(check bool) "diff of equal maps is empty" true
    (Faultmap.diff after after = [])

let test_effective_chip_roundtrip () =
  List.iter
    (fun dead ->
      let fm =
        Faultmap.of_list chip
          (List.init dead (fun i ->
               (Chip.coord_of_index chip i, Faultmap.Dead)))
      in
      let eff = Faultmap.effective_chip fm in
      let flex = chip.Chip.n_arrays - dead in
      Alcotest.(check int) "capacity = flexible pool" flex eff.Chip.n_arrays;
      Alcotest.(check bool) "validate round-trip" true
        (Chip.validate eff = eff);
      Alcotest.(check bool) "grid_cols within pool" true
        (eff.Chip.grid_cols <= flex);
      Alcotest.(check bool) "grid covers the pool" true
        (eff.Chip.grid_cols * Chip.grid_rows eff >= flex);
      Alcotest.(check bool) "no fully-empty row" true
        (eff.Chip.grid_cols * (Chip.grid_rows eff - 1) < flex))
    (* includes flex < grid_cols (the tail cases) *)
    [ 1; 7; chip.Chip.n_arrays - 3; chip.Chip.n_arrays - 1 ]

(* --- the online recompile ladder --- *)

let test_recompile_healthy_level0 () =
  match Cmswitch.recompile chip (small_mlp ()) with
  | Ok o ->
    Alcotest.(check int) "healthy compile at ladder level 0" 0
      o.Cmswitch.rc_level;
    Alcotest.(check int) "one attempt" 1 o.Cmswitch.rc_attempts
  | Error _ -> Alcotest.fail "healthy recompile must succeed"

let test_recompile_budget_jumps_to_serial () =
  match Cmswitch.recompile ~budget_seconds:0. chip (small_mlp ()) with
  | Ok o ->
    Alcotest.(check int) "spent budget jumps to the serial level" 3
      o.Cmswitch.rc_level;
    Alcotest.(check bool) "serial fallback events recorded" true
      (List.exists
         (fun e -> e.Degrade.stage = Degrade.Serial_fallback)
         o.Cmswitch.rc_result.Cmswitch.degradation.Degrade.events)
  | Error _ -> Alcotest.fail "the serial level must still produce a plan"

let test_recompile_start_level () =
  (match Cmswitch.recompile ~start_level:2 chip (small_mlp ()) with
  | Ok o ->
    Alcotest.(check bool) "starts at the requested level" true
      (o.Cmswitch.rc_level >= 2)
  | Error _ -> Alcotest.fail "the near-greedy level must plan a small MLP");
  match Cmswitch.recompile ~start_level:9 chip (small_mlp ()) with
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "bad start_level rejected" true
      (contains msg "start_level")
  | _ -> Alcotest.fail "start_level 9 accepted"

let test_recompile_all_dead () =
  let all_dead =
    Faultmap.of_list chip
      (List.init chip.Chip.n_arrays (fun i ->
           (Chip.coord_of_index chip i, Faultmap.Dead)))
  in
  let cfg = Cmswitch.Config.(default |> with_faults (Some all_dead)) in
  match Cmswitch.recompile ~config:cfg chip (small_mlp ()) with
  | Ok _ -> Alcotest.fail "an all-dead chip cannot recompile"
  | Error report ->
    Alcotest.(check bool) "diagnostics explain every level" true
      (report.Degrade.diagnostics <> [])

(* --- fleet serving --- *)

module Fleet = Cim_sim.Fleet

let test_fleet_schedule_codec () =
  let evs =
    [ { Fleet.at = 100.; chip = 1; coord = c 2 3; state = Some Faultmap.Dead };
      { Fleet.at = 200.; chip = 0; coord = c 0 1;
        state = Some (Faultmap.Stuck_mode Mode.Memory) };
      { Fleet.at = 250.; chip = 0; coord = c 1 1;
        state = Some (Faultmap.Transient_switch_failure 0.25) };
      { Fleet.at = 300.; chip = 0; coord = c 0 1; state = None } ]
  in
  (match Fleet.schedule_of_string (Fleet.schedule_to_string evs) with
  | Ok evs' -> Alcotest.(check bool) "round-trips" true (evs = evs')
  | Error m -> Alcotest.fail m);
  (match
     Fleet.schedule_of_string "# comment\n\nat=1 chip=0 array=0,0 fault=dead\n"
   with
  | Ok [ e ] ->
    Alcotest.(check bool) "comments and blanks skipped" true
      (e.Fleet.state = Some Faultmap.Dead)
  | _ -> Alcotest.fail "comment/blank skipping failed");
  match Fleet.schedule_of_string "at=x chip=0 array=0,0 fault=dead" with
  | Error m ->
    Alcotest.(check bool) "errors name the line" true (contains m "line 1")
  | Ok _ -> Alcotest.fail "bad cycle count accepted"

(* a fast compiler-free planner for property tests: the pass cost scales
   with the lost capacity, and a chip with no flexible array is out *)
let synthetic_planner ~chip:_ ~faults:fm =
  let flex = Faultmap.flexible_count fm in
  if flex = 0 then None
  else
    let pass =
      1e4 *. float_of_int chip.Chip.n_arrays /. float_of_int flex
    in
    Some
      { Fleet.level = (if flex = chip.Chip.n_arrays then 0 else 1);
        profile =
          { Serving.prefill_cycles = (fun _ -> pass);
            decode_cycles = (fun _ -> pass) } }

let prop_fleet_conservation =
  QCheck.Test.make
    ~name:"fleet conserves requests over random traces and fault schedules"
    ~count:30
    (QCheck.make
       ~print:(fun (chips, n, faults, seed) ->
         Printf.sprintf "chips=%d n=%d faults=%d seed=%d" chips n faults seed)
       QCheck.Gen.(
         quad (int_range 1 3) (int_range 1 32) (int_range 0 6)
           (int_range 0 10_000)))
    (fun (chips, n, faults, seed) ->
      let reqs =
        Serving.poisson_trace (Rng.create seed) ~n ~mean_gap:2e4 ~prompt:8
          ~output:4
      in
      let schedule =
        if faults = 0 then []
        else
          Fleet.random_schedule
            (Rng.create (seed + 1))
            ~chip ~chips ~n:faults ~horizon:1e6
      in
      let config =
        { Fleet.chips;
          slo = (if seed mod 2 = 0 then Some 3e5 else None);
          shed_output = 1;
          max_retries = seed mod 3;
          backoff_base = 1e3;
          backoff_cap = 6.4e4;
          breaker_threshold = 1 + (seed mod 4);
          recompile_cycles = 5e3;
          jobs = 1 }
      in
      let s1 = Fleet.run ~config ~chip synthetic_planner schedule reqs in
      let s4 =
        Fleet.run
          ~config:{ config with Fleet.jobs = 4 }
          ~chip synthetic_planner schedule reqs
      in
      (* byte-identical stats at any job count, and every request accounted
         for exactly once *)
      s1 = s4 && s1.Fleet.offered = n
      && s1.Fleet.completed + s1.Fleet.dropped + s1.Fleet.shed
         = s1.Fleet.offered
      && s1.Fleet.starved <= s1.Fleet.shed)

let test_fleet_breaker_opens () =
  (* two dead-array events on chip 0 with threshold 2: the breaker opens,
     chip 1 absorbs the traffic, nothing is lost *)
  let schedule =
    [ { Fleet.at = 1e4; chip = 0; coord = c 0 0; state = Some Faultmap.Dead };
      { Fleet.at = 2e4; chip = 0; coord = c 1 0; state = Some Faultmap.Dead } ]
  in
  let reqs =
    Serving.poisson_trace (Rng.create 5) ~n:20 ~mean_gap:1.5e4 ~prompt:8
      ~output:4
  in
  let config =
    { Fleet.default_config with
      Fleet.chips = 2;
      breaker_threshold = 2;
      backoff_base = 1e3;
      backoff_cap = 6.4e4;
      recompile_cycles = 5e3;
      jobs = 1 }
  in
  let s = Fleet.run ~config ~chip synthetic_planner schedule reqs in
  Alcotest.(check int) "breaker opened once" 1 s.Fleet.breaker_opens;
  Alcotest.(check int) "one chip out" 1 s.Fleet.chips_out;
  Alcotest.(check int) "first fault recompiled before the breaker" 1
    s.Fleet.recompiles;
  Alcotest.(check int) "conservation" s.Fleet.offered
    (s.Fleet.completed + s.Fleet.dropped + s.Fleet.shed)

let test_fleet_all_chips_out () =
  (* a single chip whose breaker opens at the first fault: in-flight and
     queued requests starve (shed), later arrivals are dropped — never an
     unaccounted request *)
  let schedule =
    [ { Fleet.at = 1.5e4; chip = 0; coord = c 0 0; state = Some Faultmap.Dead } ]
  in
  let reqs =
    Serving.poisson_trace (Rng.create 11) ~n:12 ~mean_gap:1e4 ~prompt:8
      ~output:2
  in
  let config =
    { Fleet.default_config with
      Fleet.chips = 1;
      breaker_threshold = 1;
      jobs = 1 }
  in
  let s = Fleet.run ~config ~chip synthetic_planner schedule reqs in
  Alcotest.(check int) "the only chip is out" 1 s.Fleet.chips_out;
  Alcotest.(check bool) "later arrivals dropped" true (s.Fleet.dropped > 0);
  Alcotest.(check int) "conservation" s.Fleet.offered
    (s.Fleet.completed + s.Fleet.dropped + s.Fleet.shed)

(* --- golden fleet fixture: real planner through Cmswitch.recompile --- *)

let golden_dir () =
  List.find_opt Sys.file_exists
    [ "../../../test/golden"; "test/golden"; "golden" ]

let golden_path key =
  Filename.concat (Option.value (golden_dir ()) ~default:"golden") (key ^ ".txt")

let run_fleet_fixture ~jobs =
  let graph = small_mlp () in
  let base_cfg = Cmswitch.Config.(default |> with_jobs 1) in
  let pass =
    (Cmswitch.compile ~config:base_cfg chip graph).Cmswitch.schedule
      .Plan.total_cycles
  in
  let planner ~chip:_ ~faults:fm =
    let cfg =
      if Faultmap.fault_count fm = 0 then base_cfg
      else Cmswitch.Config.with_faults (Some fm) base_cfg
    in
    match Cmswitch.recompile ~config:cfg chip graph with
    | Ok o ->
      let p = o.Cmswitch.rc_result.Cmswitch.schedule.Plan.total_cycles in
      Some
        { Fleet.level = o.Cmswitch.rc_level;
          profile =
            { Serving.prefill_cycles = (fun _ -> p);
              decode_cycles = (fun _ -> p) } }
    | Error _ -> None
  in
  let reqs =
    Serving.poisson_trace (Rng.create 42) ~n:12 ~mean_gap:(2.5 *. pass)
      ~prompt:8 ~output:2
  in
  let schedule =
    [ { Fleet.at = 3. *. pass; chip = 0; coord = c 0 0;
        state = Some Faultmap.Dead } ]
  in
  let config =
    { Fleet.default_config with
      Fleet.chips = 2;
      slo = Some (20. *. pass);
      backoff_base = 0.5 *. pass;
      backoff_cap = 8. *. pass;
      recompile_cycles = pass;
      jobs }
  in
  Fleet.run ~config ~chip planner schedule reqs

(* %h renders exact binary64 bits: any drift in the event loop shows *)
let render_fleet_stats (s : Fleet.stats) =
  Printf.sprintf
    "offered=%d completed=%d dropped=%d shed=%d starved=%d\n\
     retries=%d recompiles=%d breaker_opens=%d chips_out=%d slo_violations=%d\n\
     makespan=%h mean_latency=%h p50=%h p95=%h p99=%h ttft=%h\n\
     tokens=%d tokens_per_megacycle=%h\n\
     per_chip=[%s]\n"
    s.Fleet.offered s.Fleet.completed s.Fleet.dropped s.Fleet.shed
    s.Fleet.starved s.Fleet.retries s.Fleet.recompiles s.Fleet.breaker_opens
    s.Fleet.chips_out s.Fleet.slo_violations s.Fleet.makespan
    s.Fleet.mean_latency s.Fleet.p50_latency s.Fleet.p95_latency
    s.Fleet.p99_latency s.Fleet.mean_ttft s.Fleet.tokens
    s.Fleet.tokens_per_megacycle
    (String.concat "; " (List.map string_of_int s.Fleet.per_chip_served))

let test_fleet_golden () =
  let s = run_fleet_fixture ~jobs:1 in
  (* the fixture must actually exercise the failure path *)
  Alcotest.(check bool) "a mid-run fault forces a recompile" true
    (s.Fleet.recompiles >= 1);
  Alcotest.(check int) "no request errors out" s.Fleet.offered
    (s.Fleet.completed + s.Fleet.dropped + s.Fleet.shed);
  let rendered = render_fleet_stats s in
  if Sys.getenv_opt "CMSWITCH_UPDATE_GOLDEN" = Some "1" then begin
    let path = golden_path "fleet" in
    let oc = open_out path in
    output_string oc rendered;
    close_out oc;
    Printf.printf "golden fixture refreshed: %s\n" path
  end
  else begin
    let path = golden_path "fleet" in
    if not (Sys.file_exists path) then
      Alcotest.failf
        "missing fixture %s — run CMSWITCH_UPDATE_GOLDEN=1 dune runtest" path;
    let ic = open_in path in
    let expected =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    if expected <> rendered then
      Printf.printf
        "golden mismatch for %s: if the change is intentional, refresh with \
         CMSWITCH_UPDATE_GOLDEN=1 dune runtest\n"
        path;
    Alcotest.(check string) "fleet stats fingerprint" expected rendered
  end

let test_fleet_jobs_determinism () =
  let s1 = run_fleet_fixture ~jobs:1 in
  let s4 = run_fleet_fixture ~jobs:4 in
  Alcotest.(check bool) "byte-identical stats at jobs 1 and 4" true (s1 = s4)

(* --- cost-model drift attribution --- *)

module Drift = Cim_sim.Drift
module Json = Cim_obs.Json

let test_drift_attribution () =
  Alcotest.(check (float 1e-9)) "signed relative drift" 10.
    (Drift.drift_pct ~predicted:100. ~measured:110.);
  Alcotest.(check (float 1e-9)) "both zero" 0.
    (Drift.drift_pct ~predicted:0. ~measured:0.);
  Alcotest.(check bool) "only the prediction zero" true
    (Drift.drift_pct ~predicted:0. ~measured:5. = Float.infinity);
  (* a real compile against its timing-sim measurement *)
  let r = Cmswitch.compile chip (small_mlp ()) in
  let m = Timing.run chip r.Cmswitch.program in
  let sched = r.Cmswitch.schedule in
  let p =
    { Drift.source = sched.Plan.compiler;
      seg_intra = List.map (fun s -> s.Plan.intra_cycles) sched.Plan.segments;
      intra = sched.Plan.intra;
      switch = sched.Plan.switch;
      rewrite = sched.Plan.rewrite;
      writeback = sched.Plan.writeback;
      total = sched.Plan.total_cycles }
  in
  let d = Drift.attribute p m in
  Alcotest.(check int) "six summary rows" 6 (List.length d.Drift.summary);
  Alcotest.(check int) "one attribution row per segment"
    (List.length sched.Plan.segments)
    (List.length d.Drift.segments);
  let find label =
    match List.find_opt (fun r -> r.Drift.label = label) d.Drift.summary with
    | Some r -> r
    | None -> Alcotest.failf "summary lacks %s" label
  in
  Alcotest.(check string) "intra is cim-mode time" "cim" (find "intra").Drift.mode;
  Alcotest.(check string) "switch is memory-system time" "memory"
    (find "switch").Drift.mode;
  Alcotest.(check (float 1e-6)) "totals line up with the schedule"
    sched.Plan.total_cycles (find "total").Drift.predicted;
  Alcotest.(check (float 1e-6)) "totals line up with the measurement"
    m.Timing.cycles.Timing.total (find "total").Drift.measured;
  (* the per-segment measured compute must sum to the measured compute total *)
  let seg_sum =
    List.fold_left (fun a s -> a +. s.Drift.seg_measured) 0. d.Drift.segments
  in
  Alcotest.(check (float 1e-6)) "segments partition measured compute"
    m.Timing.cycles.Timing.compute seg_sum;
  (* record_metrics publishes labelled gauges the report reads back *)
  Cim_obs.Metrics.set_enabled true;
  Cim_obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Cim_obs.Metrics.set_enabled false;
      Cim_obs.Metrics.reset ())
    (fun () ->
      Drift.record_metrics d;
      let total = find "total" in
      let g =
        Cim_obs.Metrics.gauge
          ~labels:[ ("component", "total"); ("mode", "all") ]
          "costmodel.drift.pct"
      in
      Alcotest.(check (float 1e-9)) "drift gauge published"
        (Drift.drift_pct ~predicted:total.Drift.predicted
           ~measured:total.Drift.measured)
        (Cim_obs.Metrics.gauge_value g));
  (* the json shape is what Telemetry.report renders *)
  let j = Drift.to_json d in
  Alcotest.(check int) "json summary rows" 6
    (match Json.member "summary" j with Some (Json.List l) -> List.length l | _ -> -1);
  match Json.member "rows" j with
  | Some (Json.List (row :: _)) ->
    Alcotest.(check bool) "segment rows carry drift_pct" true
      (Json.member "drift_pct" row <> None)
  | _ -> Alcotest.fail "json lacks per-segment rows"

(* --- fleet telemetry: recording-only, deterministic, snapshot cadence --- *)

module Telemetry = Cim_obs.Telemetry
module Timeline = Cim_obs.Timeline

let test_fleet_telemetry () =
  let reqs =
    Serving.poisson_trace (Rng.create 7) ~n:30 ~mean_gap:2e4 ~prompt:8 ~output:4
  in
  let schedule =
    [ { Fleet.at = 5e4; chip = 0; coord = c 0 0; state = Some Faultmap.Dead };
      { Fleet.at = 1.2e5; chip = 1; coord = c 1 0; state = Some Faultmap.Dead } ]
  in
  let config =
    { Fleet.default_config with
      Fleet.chips = 2;
      slo = Some 3e5;
      backoff_base = 1e3;
      backoff_cap = 6.4e4;
      recompile_cycles = 5e3;
      jobs = 1 }
  in
  let plain = Fleet.run ~config ~chip synthetic_planner schedule reqs in
  let tele = Telemetry.create ~snapshot_interval:5e4 ~slo_budget:0.05 () in
  let observed =
    Fleet.run ~config ~telemetry:tele ~chip synthetic_planner schedule reqs
  in
  (* the collector is recording-only: attaching it must not perturb the
     event loop in any way *)
  Alcotest.(check bool) "stats identical with and without telemetry" true
    (plain = observed);
  Alcotest.(check bool) "request phases recorded" true
    (Telemetry.span_count tele > 0);
  let doc = Telemetry.to_json tele in
  let names key =
    match Json.member key doc with
    | Some (Json.List l) ->
      List.filter_map
        (fun s ->
          match Json.member "name" s with
          | Some (Json.String n) -> Some n
          | _ -> None)
        l
    | _ -> []
  in
  let span_names = names "spans" and mark_names = names "marks" in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " spans present") true (List.mem n span_names))
    [ "queue"; "prefill"; "decode"; "recompile" ];
  Alcotest.(check bool) "fault marks present" true
    (List.mem "fault" mark_names);
  (* snapshots: at least one per interval that saw events, strictly
     increasing timestamps, and the forced end-of-run sample *)
  let snaps = Timeline.samples (Telemetry.timeline tele) in
  Alcotest.(check bool) "snapshot cadence" true
    (List.length snaps >= int_of_float (plain.Fleet.makespan /. 5e4 /. 2.));
  ignore
    (List.fold_left
       (fun prev s ->
         Alcotest.(check bool) "snapshot times increase" true
           (s.Timeline.t > prev);
         s.Timeline.t)
       (-1.) snaps);
  (match List.rev snaps with
  | last :: _ ->
    Alcotest.(check (float 1e-6)) "final forced sample at the last event"
      plain.Fleet.makespan last.Timeline.t;
    Alcotest.(check bool) "snapshots carry queue depth and burn rate" true
      (List.mem_assoc "queue_depth" last.Timeline.values
      && List.mem_assoc "slo_burn_rate" last.Timeline.values)
  | [] -> Alcotest.fail "no snapshots");
  (* run meta and the slo error budget land in the document *)
  (match Json.member "meta" doc with
  | Some meta ->
    Alcotest.(check bool) "chips in meta" true
      (Json.member "chips" meta = Some (Json.Int 2))
  | None -> Alcotest.fail "no meta");
  Alcotest.(check bool) "slo summary attached" true
    (match Json.member "slo" doc with
    | Some slo -> Json.member "burn_rate" slo <> None
    | None -> false)

let suite =
  ( "robustness",
    [
      Alcotest.test_case "faultmap injection" `Quick test_faultmap_inject;
      Alcotest.test_case "faultmap states" `Quick test_faultmap_states;
      Alcotest.test_case "degraded compile: mlp" `Quick test_degraded_mlp;
      Alcotest.test_case "degraded compile: cnn" `Quick test_degraded_cnn;
      Alcotest.test_case "degraded compile: attention" `Quick test_degraded_attention;
      Alcotest.test_case "degraded compile: stuck arrays" `Quick
        test_degraded_stuck_arrays;
      Alcotest.test_case "node-limited MILP still plans" `Quick
        test_node_limit_incumbent_plan;
      Alcotest.test_case "zero budget falls to greedy" `Quick
        test_zero_budget_greedy_fallback;
      Alcotest.test_case "alloc outcome classification" `Quick
        test_alloc_outcome_classification;
      Alcotest.test_case "degrade ladder unit" `Quick test_degrade_solve_unit;
      Alcotest.test_case "compile_robust: healthy" `Quick test_compile_robust_ok;
      Alcotest.test_case "compile_robust: total failure" `Quick
        test_compile_robust_total_failure;
      Alcotest.test_case "machine fault messages" `Quick
        test_machine_dead_and_stuck_messages;
      Alcotest.test_case "machine transient retries" `Quick
        test_machine_transient_retries;
      Alcotest.test_case "timing charges retries" `Quick test_timing_charges_retries;
      Alcotest.test_case "check: missing weights" `Quick
        test_check_catches_missing_weights;
      Alcotest.test_case "check: mode misuse" `Quick test_check_catches_mode_misuse;
      Alcotest.test_case "check: use before def" `Quick
        test_check_catches_use_before_def;
      Alcotest.test_case "check: fault awareness" `Quick test_check_faults;
      Alcotest.test_case "serving: empty trace" `Quick test_serving_empty_trace;
      Alcotest.test_case "serving: deadline drops" `Quick test_serving_deadline_drops;
      Alcotest.test_case "serving: small-trace p95" `Quick
        test_serving_small_trace_p95;
      Alcotest.test_case "interpolate: duplicate x keeps last" `Quick
        test_interpolate_dup_x;
      Alcotest.test_case "inject: transient band" `Quick
        test_inject_transient_band;
      Alcotest.test_case "faultmap apply/diff round-trip" `Quick
        test_faultmap_apply_diff;
      Alcotest.test_case "effective chip validates for every pool" `Quick
        test_effective_chip_roundtrip;
      Alcotest.test_case "recompile: healthy at level 0" `Quick
        test_recompile_healthy_level0;
      Alcotest.test_case "recompile: spent budget goes serial" `Quick
        test_recompile_budget_jumps_to_serial;
      Alcotest.test_case "recompile: start level" `Quick
        test_recompile_start_level;
      Alcotest.test_case "recompile: all dead errors" `Quick
        test_recompile_all_dead;
      Alcotest.test_case "fleet: schedule codec" `Quick
        test_fleet_schedule_codec;
      QCheck_alcotest.to_alcotest prop_fleet_conservation;
      Alcotest.test_case "fleet: circuit breaker" `Quick
        test_fleet_breaker_opens;
      Alcotest.test_case "fleet: all chips out" `Quick test_fleet_all_chips_out;
      Alcotest.test_case "fleet: golden fixture" `Quick test_fleet_golden;
      Alcotest.test_case "fleet: jobs determinism" `Quick
        test_fleet_jobs_determinism;
      Alcotest.test_case "drift: attribution" `Quick test_drift_attribution;
      Alcotest.test_case "fleet: telemetry" `Quick test_fleet_telemetry;
    ] )
