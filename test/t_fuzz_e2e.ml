(* Whole-stack fuzz across hardware configurations: for random networks on
   random chip scalings, compilation must succeed, the flow must validate,
   the timing simulator must agree with the compiler's roll-up, and the
   dual-mode result must never lose to the all-compute restriction. This is
   the compositional safety net behind every experiment sweep. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Flow = Cim_metaop.Flow
module Cmswitch = Cim_compiler.Cmswitch
module Segment = Cim_compiler.Segment
module Alloc = Cim_compiler.Alloc
module Plan = Cim_compiler.Plan
module Timing = Cim_sim.Timing

let restricted = Cmswitch.Config.(with_force_all_compute true default)

(* random instance: chip size, batch, MLP widths *)
let gen_instance =
  QCheck.Gen.(
    quad (int_range 4 128) (int_range 1 4)
      (list_size (int_range 2 5) (int_range 8 1500))
      (int_range 0 1000))

let arb_instance =
  QCheck.make
    ~print:(fun (n, b, dims, _) ->
      Printf.sprintf "chip=%d batch=%d dims=[%s]" n b
        (String.concat ";" (List.map string_of_int dims)))
    gen_instance

let prop_compile_everywhere =
  QCheck.Test.make ~name:"compile + validate + timing agree on random chips"
    ~count:40 arb_instance
    (fun (n_arrays, batch, dims, _seed) ->
      let chip = Config.scaled Config.dynaplasia ~n_arrays in
      let g = Cim_models.Mlp.build ~batch ~dims () in
      let r = Cmswitch.compile chip g in
      let flow_ok = Flow.validate chip r.Cmswitch.program = Ok () in
      let t = Timing.run chip r.Cmswitch.program in
      let total = r.Cmswitch.schedule.Plan.total_cycles in
      (* the schedule's write-back term is a conservative boundary
         estimate; the emitted flow realises it as eager stores priced
         inside the AI traffic, so timing <= schedule <= timing + wb *)
      let sim = t.Timing.cycles.Timing.total in
      let wb = r.Cmswitch.schedule.Plan.writeback in
      let eps = 1e-6 *. Float.max 1. total in
      let timing_ok = sim <= total +. eps && total <= sim +. wb +. eps in
      let dominance_ok =
        let base = Cmswitch.compile ~config:restricted chip g in
        total <= base.Cmswitch.schedule.Plan.total_cycles *. (1. +. 1e-9)
      in
      flow_ok && timing_ok && dominance_ok && total > 0.)

let prop_segments_partition_on_random_chips =
  QCheck.Test.make ~name:"segments tile operators on random chips" ~count:40
    arb_instance
    (fun (n_arrays, batch, dims, _) ->
      let chip = Config.scaled Config.dynaplasia ~n_arrays in
      let g = Cim_models.Mlp.build ~batch ~dims () in
      let r = Cmswitch.compile chip g in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun (s : Plan.seg_plan) ->
          if s.Plan.lo <> !next then ok := false;
          if Plan.arrays_used s > chip.Chip.n_arrays then ok := false;
          next := s.Plan.hi + 1)
        r.Cmswitch.schedule.Plan.segments;
      !ok && !next = Array.length r.Cmswitch.ops)

let prop_transformer_layers_compile_on_small_chips =
  QCheck.Test.make ~name:"tiny transformer compiles on small chips" ~count:15
    QCheck.(pair (int_range 6 64) (int_range 1 8))
    (fun (n_arrays, kv) ->
      let chip = Config.scaled Config.dynaplasia ~n_arrays in
      let cfg = Cim_models.Transformer.tiny () in
      let g =
        Cim_models.Transformer.build_layer cfg
          (Cim_models.Workload.decode ~batch:1 kv) ~layer_index:0
      in
      let r = Cmswitch.compile chip g in
      Flow.validate chip r.Cmswitch.program = Ok ()
      && r.Cmswitch.schedule.Plan.total_cycles > 0.)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "fuzz-e2e",
    [
      qtest prop_compile_everywhere;
      qtest prop_segments_partition_on_random_chips;
      qtest prop_transformer_layers_compile_on_small_chips;
    ] )
