(* Unit tests for the domain work pool: job-count validation (shared with
   the CLI --jobs flag), result ordering, worker-exception propagation
   (re-raise at await, never a deadlock), shutdown semantics including
   cancellation of never-started tasks, and the nested-parallelism guard. *)

module Pool = Cim_util.Pool
module Segment = Cim_compiler.Segment
module Ccfg = Cim_compiler.Cmswitch.Config
module Config = Cim_arch.Config

let test_parse_jobs () =
  Alcotest.(check bool) "4 parses" true (Pool.parse_jobs "4" = Ok 4);
  Alcotest.(check bool) "1 parses" true (Pool.parse_jobs "1" = Ok 1);
  Alcotest.(check bool) "whitespace tolerated" true (Pool.parse_jobs " 8 " = Ok 8);
  List.iter
    (fun s ->
      match Pool.parse_jobs s with
      | Ok n -> Alcotest.failf "%S parsed to %d" s n
      | Error _ -> ())
    [ "0"; "-1"; "-100"; ""; "two"; "3.5"; "1e2" ]

let test_create_rejects_bad_jobs () =
  List.iter
    (fun jobs ->
      match Pool.create ~jobs () with
      | exception Invalid_argument _ -> ()
      | t ->
        Pool.shutdown t;
        Alcotest.failf "create ~jobs:%d succeeded" jobs)
    [ 0; -1 ];
  (* the same contract at the Segment.run level *)
  let chip = Config.dynaplasia in
  let opts = Ccfg.to_segment_options (Ccfg.with_jobs 0 Ccfg.default) in
  match Segment.run ~options:opts chip [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Segment.run accepted jobs = 0"

let test_map_preserves_order () =
  List.iter
    (fun jobs ->
      let r =
        Pool.with_pool ~jobs (fun p ->
            Pool.map_list p (fun x -> x * x) [ 1; 2; 3; 4; 5; 6; 7; 8 ])
      in
      Alcotest.(check (list int))
        (Printf.sprintf "squares in order at jobs=%d" jobs)
        [ 1; 4; 9; 16; 25; 36; 49; 64 ] r)
    [ 1; 2; 4 ]

exception Boom of int

let test_exception_propagates () =
  (* a worker exception must re-raise at await on the caller's domain, and
     re-raise deterministically by submission order, not completion order *)
  List.iter
    (fun jobs ->
      match
        Pool.with_pool ~jobs (fun p ->
            Pool.map_list p
              (fun x -> if x mod 3 = 0 then raise (Boom x) else x)
              [ 1; 2; 3; 4; 5; 6 ])
      with
      | exception Boom 3 -> ()
      | exception e ->
        Alcotest.failf "jobs=%d raised %s, wanted Boom 3" jobs
          (Printexc.to_string e)
      | _ -> Alcotest.failf "jobs=%d swallowed the exception" jobs)
    [ 1; 2; 4 ]

let test_pool_survives_failure () =
  (* after one task fails, the pool keeps serving later submissions — an
     exception must not wedge the queue or kill the workers *)
  Pool.with_pool ~jobs:2 (fun p ->
      let bad = Pool.submit p (fun () -> failwith "task failed") in
      (match Pool.await bad with
      | exception Failure _ -> ()
      | () -> Alcotest.fail "failure swallowed");
      let good = Pool.submit p (fun () -> 41 + 1) in
      Alcotest.(check int) "pool still works" 42 (Pool.await good))

let test_shutdown_cancels_queued () =
  let t = Pool.create ~jobs:2 () in
  (* park both workers on a gate so queued tasks cannot start *)
  let release = Atomic.make false in
  let started = Atomic.make 0 in
  let blocker () =
    Atomic.incr started;
    while not (Atomic.get release) do
      Domain.cpu_relax ()
    done
  in
  let b1 = Pool.submit t blocker and b2 = Pool.submit t blocker in
  (* wait for the workers to actually pick the blockers up, or the drain
     below could discard them instead of the probe task *)
  while Atomic.get started < 2 do
    Domain.cpu_relax ()
  done;
  let ran = Atomic.make false in
  let queued = Pool.submit t (fun () -> Atomic.set ran true) in
  (* shut down from a helper domain; it blocks joining the parked workers.
     The main domain polls submit until the pool reports closed (the drain
     happens before that flag flips), then opens the gate. *)
  let closer = Domain.spawn (fun () -> Pool.shutdown t) in
  let rec wait_closed () =
    match Pool.submit t (fun () -> ()) with
    | _ -> wait_closed ()
    | exception Invalid_argument _ -> ()
  in
  wait_closed ();
  Atomic.set release true;
  Domain.join closer;
  Pool.await b1;
  Pool.await b2;
  (match Pool.await queued with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "queued task should have been cancelled");
  Alcotest.(check bool) "cancelled task never ran" false (Atomic.get ran);
  (* idempotent *)
  Pool.shutdown t

let test_current_worker () =
  Alcotest.(check bool) "main domain is not a worker" true
    (Pool.current_worker () = None);
  let seen =
    Pool.with_pool ~jobs:2 (fun p ->
        Pool.map_list p (fun _ -> Pool.current_worker ()) [ (); () ])
  in
  List.iter
    (fun w ->
      match w with
      | Some i -> Alcotest.(check bool) "worker index in range" true (i >= 0 && i < 2)
      | None -> Alcotest.fail "task ran outside a worker domain")
    seen;
  (* inline (jobs = 1) pools run on the caller: not a worker *)
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check bool) "inline task is not a worker" true
        (Pool.await (Pool.submit p Pool.current_worker) = None))

let test_nested_runs_degrade () =
  (* Segment.run called from inside a pool worker must go serial (and in
     particular terminate) rather than spawn a nested domain pool *)
  let chip = Config.dynaplasia in
  let rng = Cim_util.Rng.create 7 in
  let g = Cim_models.Mlp.build ~rng ~batch:2 ~dims:[ 32; 64; 32 ] () in
  let ops = Cim_compiler.Opinfo.extract chip g in
  let direct, _ =
    Segment.run
      ~options:(Ccfg.to_segment_options (Ccfg.with_jobs 2 Ccfg.default))
      chip ops
  in
  let nested =
    Pool.with_pool ~jobs:2 (fun p ->
        Pool.await
          (Pool.submit p (fun () ->
               fst
                 (Segment.run
                    ~options:
                      (Ccfg.to_segment_options (Ccfg.with_jobs 2 Ccfg.default))
                    chip ops))))
  in
  Alcotest.(check bool) "nested result identical" true (nested = direct)

let suite =
  ( "pool",
    [
      Alcotest.test_case "parse_jobs validation" `Quick test_parse_jobs;
      Alcotest.test_case "create rejects jobs < 1" `Quick test_create_rejects_bad_jobs;
      Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
      Alcotest.test_case "worker exception propagates" `Quick test_exception_propagates;
      Alcotest.test_case "pool survives a failed task" `Quick test_pool_survives_failure;
      Alcotest.test_case "shutdown cancels queued tasks" `Quick test_shutdown_cancels_queued;
      Alcotest.test_case "current_worker" `Quick test_current_worker;
      Alcotest.test_case "nested Segment.run degrades to serial" `Quick test_nested_runs_degrade;
    ] )
