(* The content-addressed compilation cache: the Store's integrity
   guarantees (bad entries are misses, never wrong payloads), payload
   round-trips, and the end-to-end contract — a warm compile replays a
   byte-identical program, and a corrupted cache silently degrades to a
   cold compile. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Store = Cim_cache.Store
module Cmswitch = Cim_compiler.Cmswitch
module Cfg = Cim_compiler.Cmswitch.Config
module Ccache = Cim_compiler.Ccache
module Segment = Cim_compiler.Segment
module Opinfo = Cim_compiler.Opinfo
module Flow = Cim_metaop.Flow

let chip = Config.dynaplasia

let fresh_dir () = Filename.temp_dir "cmswitch-cache-test" ""

(* one transformer block at short sequence length: big enough to exercise
   multi-segment DP, small enough to keep the suite quick *)
let small_graph () =
  let e = Option.get (Zoo.find "bert-large") in
  (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 16)

(* --- store ---------------------------------------------------------------- *)

let test_store_round_trip () =
  let s = Store.open_dir (fresh_dir ()) in
  Alcotest.(check (option string)) "miss on empty" None
    (Store.find s ~tier:"seg" ~key:"k1");
  Store.put s ~tier:"seg" ~key:"k1" ~payload:"hello";
  Store.put s ~tier:"prog" ~key:"k1" ~payload:"world";
  Alcotest.(check (option string)) "seg entry" (Some "hello")
    (Store.find s ~tier:"seg" ~key:"k1");
  Alcotest.(check (option string)) "prog entry, same key, distinct tier"
    (Some "world")
    (Store.find s ~tier:"prog" ~key:"k1");
  (* a second handle on the same directory sees the entries: persistence *)
  let s2 = Store.open_dir (Store.dir s) in
  Alcotest.(check (option string)) "persisted" (Some "hello")
    (Store.find s2 ~tier:"seg" ~key:"k1");
  let c = Store.counters s in
  Alcotest.(check int) "hits" 2 c.Store.hits;
  Alcotest.(check int) "misses" 1 c.Store.misses;
  Alcotest.(check int) "puts" 2 c.Store.puts;
  Alcotest.(check int) "invalid" 0 c.Store.invalid;
  Alcotest.(check (list (pair string string))) "verify clean" []
    (Store.verify s)

let test_store_overwrite () =
  let s = Store.open_dir (fresh_dir ()) in
  Store.put s ~tier:"seg" ~key:"k" ~payload:"v1";
  Store.put s ~tier:"seg" ~key:"k" ~payload:"v2";
  Alcotest.(check (option string)) "latest wins" (Some "v2")
    (Store.find s ~tier:"seg" ~key:"k");
  let d = Store.disk_stats s in
  Alcotest.(check int) "single entry on disk" 1 d.Store.total_entries

let corrupt path =
  let oc = open_out path in
  output_string oc "{ not json";
  close_out oc

let test_store_corrupt_entry_is_miss () =
  let s = Store.open_dir (fresh_dir ()) in
  Store.put s ~tier:"seg" ~key:"k" ~payload:"payload";
  corrupt (Store.entry_path s ~tier:"seg" ~key:"k");
  Alcotest.(check (option string)) "corrupt entry misses" None
    (Store.find s ~tier:"seg" ~key:"k");
  let c = Store.counters s in
  Alcotest.(check int) "counted invalid" 1 c.Store.invalid;
  Alcotest.(check int) "invalid is a miss" 1 c.Store.misses;
  Alcotest.(check bool) "verify reports it" true (Store.verify s <> [])

let test_store_truncated_entry_is_miss () =
  let s = Store.open_dir (fresh_dir ()) in
  Store.put s ~tier:"seg" ~key:"k" ~payload:(String.make 4096 'x');
  let path = Store.entry_path s ~tier:"seg" ~key:"k" in
  (* keep it valid-prefix-of-JSON-free: chop the file mid-payload *)
  let ic = open_in_bin path in
  let full = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full / 2));
  close_out oc;
  Alcotest.(check (option string)) "truncated entry misses" None
    (Store.find s ~tier:"seg" ~key:"k");
  Alcotest.(check int) "counted invalid" 1 (Store.counters s).Store.invalid

let test_store_relocated_entry_is_miss () =
  (* an entry copied to a different key's address records the wrong key:
     integrity check must refuse it rather than serve another key's data *)
  let s = Store.open_dir (fresh_dir ()) in
  Store.put s ~tier:"seg" ~key:"a" ~payload:"payload-for-a";
  let src = Store.entry_path s ~tier:"seg" ~key:"a" in
  let dst = Store.entry_path s ~tier:"seg" ~key:"b" in
  let ic = open_in_bin src in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc body;
  close_out oc;
  Alcotest.(check (option string)) "relocated entry misses" None
    (Store.find s ~tier:"seg" ~key:"b");
  Alcotest.(check int) "counted invalid" 1 (Store.counters s).Store.invalid;
  Alcotest.(check (option string)) "original still hits" (Some "payload-for-a")
    (Store.find s ~tier:"seg" ~key:"a")

let test_store_eviction () =
  let s = Store.open_dir ~max_bytes:4096 (fresh_dir ()) in
  for i = 0 to 19 do
    Store.put s ~tier:"seg"
      ~key:(Printf.sprintf "key-%d" i)
      ~payload:(String.make 512 (Char.chr (Char.code 'a' + (i mod 26))))
  done;
  let c = Store.counters s in
  Alcotest.(check bool) "evictions happened" true (c.Store.evictions > 0);
  let d = Store.disk_stats s in
  Alcotest.(check bool)
    (Printf.sprintf "footprint %d under budget" d.Store.total_bytes)
    true
    (d.Store.total_bytes <= 4096);
  (* the entry just written survives its own eviction pass *)
  Alcotest.(check bool) "newest entry kept" true
    (Store.find s ~tier:"seg" ~key:"key-19" <> None)

let test_store_clear () =
  let s = Store.open_dir (fresh_dir ()) in
  Store.put s ~tier:"seg" ~key:"a" ~payload:"x";
  Store.put s ~tier:"prog" ~key:"b" ~payload:"y";
  Alcotest.(check int) "clear count" 2 (Store.clear s);
  Alcotest.(check int) "empty after clear" 0
    (Store.disk_stats s).Store.total_entries

(* --- payloads ------------------------------------------------------------- *)

let test_prog_payload_round_trip () =
  let g = small_graph () in
  let r = Cmswitch.compile chip g in
  let p =
    {
      Ccache.segments = List.map (fun sp -> sp.Cim_compiler.Placement.plan) r.Cmswitch.places;
      program_md5 = Digest.to_hex (Digest.string (Flow.to_string r.Cmswitch.program));
      mip_solves = r.Cmswitch.dp_stats.Segment.mip_solves;
      mip_cache_hits = r.Cmswitch.dp_stats.Segment.mip_cache_hits;
      candidates = r.Cmswitch.dp_stats.Segment.candidates;
      pruned_infeasible = r.Cmswitch.dp_stats.Segment.pruned_infeasible;
      events = r.Cmswitch.degradation.Cim_compiler.Degrade.events;
    }
  in
  match Ccache.prog_payload_of_string (Ccache.prog_payload_to_string p) with
  | Error e -> Alcotest.failf "prog payload round trip: %s" e
  | Ok p' ->
    Alcotest.(check string) "program digest" p.Ccache.program_md5 p'.Ccache.program_md5;
    Alcotest.(check int) "segment count" (List.length p.Ccache.segments)
      (List.length p'.Ccache.segments);
    (* the decoder drops intra_cycles by design — the loader recomputes it
       from the cost model rather than trust a stored float *)
    let strip = List.map (fun pl -> { pl with Cim_compiler.Plan.intra_cycles = 0. }) in
    Alcotest.(check bool) "segments equal modulo intra_cycles" true
      (strip p.Ccache.segments = p'.Ccache.segments);
    Alcotest.(check int) "mip_solves" p.Ccache.mip_solves p'.Ccache.mip_solves;
    Alcotest.(check bool) "events equal" true (p.Ccache.events = p'.Ccache.events)

let test_prog_payload_rejects_garbage () =
  List.iter
    (fun s ->
      match Ccache.prog_payload_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "prog payload accepted %S" s)
    [ ""; "null"; "[]"; "{}"; "{\"segments\":3}" ]

(* --- whole-program tier, end to end --------------------------------------- *)

let compile_with_store ?(jobs = 1) store g =
  let cfg = Cfg.(default |> with_jobs jobs |> with_cache (Some store)) in
  Cmswitch.compile ~config:cfg chip g

let test_compile_twice_hits () =
  let dir = fresh_dir () in
  let g = small_graph () in
  let cold_store = Store.open_dir dir in
  let cold = compile_with_store cold_store g in
  Alcotest.(check int) "cold run has no prog hits" 0
    (Store.tier_counters cold_store Ccache.prog_tier).Store.hits;
  Alcotest.(check bool) "cold run populated the prog tier" true
    ((Store.tier_counters cold_store Ccache.prog_tier).Store.puts > 0);
  (* a fresh store handle on the same directory: cross-process warm start *)
  let warm_store = Store.open_dir dir in
  let warm = compile_with_store warm_store g in
  Alcotest.(check int) "warm run hits the prog tier" 1
    (Store.tier_counters warm_store Ccache.prog_tier).Store.hits;
  (* a store-level hit whose replay failed semantically would recompile and
     re-put: assert the entry was actually trusted *)
  Alcotest.(check int) "warm run rejected nothing" 0
    (Store.counters warm_store).Store.invalid;
  Alcotest.(check int) "warm run re-stored nothing" 0
    (Store.tier_counters warm_store Ccache.prog_tier).Store.puts;
  Alcotest.(check string) "byte-identical program"
    (Flow.to_string cold.Cmswitch.program)
    (Flow.to_string warm.Cmswitch.program);
  Alcotest.(check bool) "identical schedule" true
    (cold.Cmswitch.schedule = warm.Cmswitch.schedule);
  Alcotest.(check bool) "identical dp stats" true
    (cold.Cmswitch.dp_stats = warm.Cmswitch.dp_stats);
  Alcotest.(check bool) "replayed program validates" true
    (Flow.validate chip warm.Cmswitch.program = Ok ())

let test_corrupted_prog_entry_degrades_to_cold () =
  let dir = fresh_dir () in
  let g = small_graph () in
  let cold = compile_with_store (Store.open_dir dir) g in
  let s = Store.open_dir dir in
  let key =
    Ccache.prog_key
      ~graph_text:(Cim_nnir.Text.to_string g)
      ~chip ~faults:None
      ~config:(Cfg.canonical Cfg.default)
      ~passes:Cim_compiler.Passes.default_fingerprint ()
  in
  let path = Store.entry_path s ~tier:Ccache.prog_tier ~key in
  Alcotest.(check bool) "entry exists where prog_key points" true
    (Sys.file_exists path);
  corrupt path;
  let warm = compile_with_store s g in
  Alcotest.(check int) "corrupt entry is a miss" 0
    (Store.tier_counters s Ccache.prog_tier).Store.hits;
  Alcotest.(check bool) "and is counted invalid" true
    ((Store.counters s).Store.invalid > 0);
  Alcotest.(check string) "cold recompile, same program"
    (Flow.to_string cold.Cmswitch.program)
    (Flow.to_string warm.Cmswitch.program)

let test_warm_parallel_matches_cold_serial () =
  (* the determinism contract survives the cache: a warm jobs=4 compile
     replays the jobs=1 cold result byte for byte *)
  let dir = fresh_dir () in
  let g = small_graph () in
  let cold = compile_with_store ~jobs:1 (Store.open_dir dir) g in
  let warm_store = Store.open_dir dir in
  let warm = compile_with_store ~jobs:4 warm_store g in
  Alcotest.(check int) "jobs=4 hits the jobs=1 entry" 1
    (Store.tier_counters warm_store Ccache.prog_tier).Store.hits;
  Alcotest.(check int) "jobs=4 run rejected nothing" 0
    (Store.counters warm_store).Store.invalid;
  Alcotest.(check string) "byte-identical across job counts"
    (Flow.to_string cold.Cmswitch.program)
    (Flow.to_string warm.Cmswitch.program)

let test_config_change_misses () =
  let dir = fresh_dir () in
  let g = small_graph () in
  let _ = compile_with_store (Store.open_dir dir) g in
  let s = Store.open_dir dir in
  let cfg =
    Cfg.(default |> with_max_segment_ops 5 |> with_cache (Some s))
  in
  let _ = Cmswitch.compile ~config:cfg chip g in
  Alcotest.(check int) "different window cap, different key" 0
    (Store.tier_counters s Ccache.prog_tier).Store.hits

(* --- per-segment tier, cross-run ------------------------------------------ *)

let test_seg_tier_skips_resolves () =
  let dir = fresh_dir () in
  let g = small_graph () in
  let ops = Opinfo.extract chip g in
  let opts store =
    { (Cfg.to_segment_options Cfg.default) with Segment.cache = Some store }
  in
  let s1 = Store.open_dir dir in
  let plans1, stats1 = Segment.run ~options:(opts s1) chip ops in
  Alcotest.(check bool) "cold run solves" true (stats1.Segment.mip_solves > 0);
  Alcotest.(check bool) "cold run stores windows" true
    ((Store.tier_counters s1 Ccache.seg_tier).Store.puts > 0);
  let s2 = Store.open_dir dir in
  let plans2, stats2 = Segment.run ~options:(opts s2) chip ops in
  Alcotest.(check int) "warm run re-solves nothing" 0 stats2.Segment.mip_solves;
  Alcotest.(check bool) "warm run hit the seg tier" true
    ((Store.tier_counters s2 Ccache.seg_tier).Store.hits > 0);
  Alcotest.(check bool) "identical segmentation" true (plans1 = plans2)

let suite =
  ( "cache",
    [
      Alcotest.test_case "store round trip" `Quick test_store_round_trip;
      Alcotest.test_case "store overwrite" `Quick test_store_overwrite;
      Alcotest.test_case "corrupt entry is a miss" `Quick
        test_store_corrupt_entry_is_miss;
      Alcotest.test_case "truncated entry is a miss" `Quick
        test_store_truncated_entry_is_miss;
      Alcotest.test_case "relocated entry is a miss" `Quick
        test_store_relocated_entry_is_miss;
      Alcotest.test_case "eviction respects budget" `Quick test_store_eviction;
      Alcotest.test_case "clear" `Quick test_store_clear;
      Alcotest.test_case "prog payload round trip" `Quick
        test_prog_payload_round_trip;
      Alcotest.test_case "prog payload rejects garbage" `Quick
        test_prog_payload_rejects_garbage;
      Alcotest.test_case "compile twice hits" `Quick test_compile_twice_hits;
      Alcotest.test_case "corrupted entry degrades to cold" `Quick
        test_corrupted_prog_entry_degrades_to_cold;
      Alcotest.test_case "warm parallel matches cold serial" `Quick
        test_warm_parallel_matches_cold_serial;
      Alcotest.test_case "config change misses" `Quick test_config_change_misses;
      Alcotest.test_case "seg tier skips re-solves" `Quick
        test_seg_tier_skips_resolves;
    ] )
